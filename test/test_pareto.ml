(* Tests for the time–energy Pareto engine: grid construction and
   validation, the dominance marking, and the sweep itself — shared
   solve state vs independent one-shot solves, worker-count
   invariance, and the solve-state compatibility check. *)

open Tmedb
open Tmedb_prelude

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_floats = Alcotest.(check (list (float 1e-9)))

let alg name =
  match Experiment.algorithm_of_string name with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let expect_error label sub = function
  | Ok _ -> Alcotest.fail (label ^ ": expected an error")
  | Error e -> check_bool (label ^ ": mentions " ^ sub) true (contains e sub)

(* ------------------------------------------------------------------ *)
(* Grid *)

let test_grid_of_list () =
  check_floats "ascending list accepted" [ 1.; 2.; 3.5 ]
    (ok_or_fail (Pareto.Grid.of_list [ 1.; 2.; 3.5 ]));
  expect_error "empty" "empty" (Pareto.Grid.of_list []);
  expect_error "descending" "ascending" (Pareto.Grid.of_list [ 3.; 2. ]);
  expect_error "duplicate" "ascending" (Pareto.Grid.of_list [ 2.; 2. ]);
  expect_error "non-positive" "positive" (Pareto.Grid.of_list [ 0.; 1. ]);
  expect_error "nan" "NaN" (Pareto.Grid.of_list [ 1.; Float.nan ]);
  expect_error "infinite" "finite" (Pareto.Grid.of_list [ 1.; Float.infinity ])

let test_grid_of_range () =
  check_floats "endpoint on the grid" [ 1.; 2.; 3. ]
    (ok_or_fail (Pareto.Grid.of_range ~lo:1. ~hi:3. ~step:1.));
  check_floats "endpoint off the grid" [ 1.; 2. ]
    (ok_or_fail (Pareto.Grid.of_range ~lo:1. ~hi:2.5 ~step:1.));
  check_floats "single point" [ 4. ] (ok_or_fail (Pareto.Grid.of_range ~lo:4. ~hi:4. ~step:1.));
  expect_error "descending" "descending" (Pareto.Grid.of_range ~lo:6000. ~hi:2000. ~step:500.);
  expect_error "zero step" "step" (Pareto.Grid.of_range ~lo:1. ~hi:10. ~step:0.);
  expect_error "negative step" "step" (Pareto.Grid.of_range ~lo:1. ~hi:10. ~step:(-1.));
  expect_error "non-positive lo" "positive" (Pareto.Grid.of_range ~lo:0. ~hi:10. ~step:1.);
  expect_error "too many points" "points" (Pareto.Grid.of_range ~lo:1. ~hi:1e9 ~step:1e-3)

let test_grid_parse () =
  check_floats "range spec" [ 2000.; 4000.; 6000. ]
    (ok_or_fail (Pareto.Grid.parse_range "2000:6000:2000"));
  expect_error "two fields" "LO:HI:STEP" (Pareto.Grid.parse_range "2000:6000");
  expect_error "four fields" "LO:HI:STEP" (Pareto.Grid.parse_range "1:2:3:4");
  expect_error "not a number" "number" (Pareto.Grid.parse_range "a:2:3");
  expect_error "nan field" "NaN" (Pareto.Grid.parse_range "nan:2:3");
  expect_error "descending range" "descending" (Pareto.Grid.parse_range "6000:2000:500");
  check_floats "list spec" [ 1.5; 3. ] (ok_or_fail (Pareto.Grid.parse_list "1.5,3"));
  expect_error "descending list" "ascending" (Pareto.Grid.parse_list "3000,2000");
  expect_error "list junk" "number" (Pareto.Grid.parse_list "1,x")

(* ------------------------------------------------------------------ *)
(* Dominance *)

let mk ?(unreached = 0) ?(feasible = true) deadline energy =
  {
    Pareto.deadline;
    energy;
    transmissions = 1;
    feasible;
    unreached;
    dominated = false;
  }

let test_dominates () =
  let a = mk 1000. 5. and b = mk 2000. 7. in
  check_bool "earlier and cheaper dominates" true (Pareto.dominates a b);
  check_bool "later and dearer does not" false (Pareto.dominates b a);
  check_bool "no self-domination" false (Pareto.dominates a a);
  let c = mk 1000. 7. in
  check_bool "same energy, earlier deadline dominates" true (Pareto.dominates a c);
  check_bool "same deadline, cheaper dominates" true (Pareto.dominates (mk 2000. 5.) b);
  check_bool "incomplete never dominates" false (Pareto.dominates (mk ~unreached:2 500. 1.) b)

let test_mark_dominated () =
  (* 1000/5 dominates 2000/7; the incomplete point is dominated by
     definition; 3000/2 survives (latest but cheapest). *)
  let pts = [ mk 1000. 5.; mk 2000. 7.; mk ~unreached:1 2500. 1.; mk 3000. 2. ] in
  let marked = Pareto.mark_dominated pts in
  let flags = List.map (fun p -> p.Pareto.dominated) marked in
  check_bool "flags" true (flags = [ false; true; true; false ]);
  check_floats "order and fields preserved" (List.map (fun p -> p.Pareto.deadline) pts)
    (List.map (fun p -> p.Pareto.deadline) marked)

(* ------------------------------------------------------------------ *)
(* Sweep *)

let tiny =
  {
    Experiment.default_config with
    Experiment.n = 10;
    horizon = 6000.;
    deadline = 1500.;
    sources = 1;
  }

let tiny_problem ~channel =
  let trace = Experiment.make_trace tiny ~n:tiny.Experiment.n in
  Experiment.make_problem tiny ~trace ~channel ~source:0 ~deadline:tiny.Experiment.deadline

let grid = [ 1500.; 3000.; 4500. ]

let point_equal (a : Pareto.point) (b : Pareto.point) =
  Float.equal a.Pareto.deadline b.Pareto.deadline
  && Float.equal a.Pareto.energy b.Pareto.energy
  && a.Pareto.transmissions = b.Pareto.transmissions
  && Bool.equal a.Pareto.feasible b.Pareto.feasible
  && a.Pareto.unreached = b.Pareto.unreached
  && Bool.equal a.Pareto.dominated b.Pareto.dominated

let sweep_equal label a b =
  check_int (label ^ ": point count") (List.length a.Pareto.points) (List.length b.Pareto.points);
  check_bool (label ^ ": points equal") true
    (List.for_all2 point_equal a.Pareto.points b.Pareto.points);
  check_floats (label ^ ": front equal") a.Pareto.front b.Pareto.front

let test_sweep_shared_matches_independent () =
  List.iter
    (fun (name, channel) ->
      let p = tiny_problem ~channel in
      let planner = alg name in
      let shared = Pareto.sweep ~planner ~deadlines:grid p in
      let indep = Pareto.sweep ~share:false ~planner ~deadlines:grid p in
      let indep_lazy = Pareto.sweep ~share:false ~lazy_aux:true ~planner ~deadlines:grid p in
      sweep_equal (name ^ " shared vs eager") shared indep;
      sweep_equal (name ^ " shared vs lazy") shared indep_lazy)
    [ ("EEDCB", `Rayleigh); ("SPT", `Static) ]

let test_sweep_consistency () =
  let r = Pareto.sweep ~planner:(alg "SPT") ~deadlines:grid (tiny_problem ~channel:`Static) in
  check_floats "one point per grid deadline" grid
    (List.map (fun p -> p.Pareto.deadline) r.Pareto.points);
  (* The marking is a pure function of the point values. *)
  let remarked = Pareto.mark_dominated r.Pareto.points in
  check_bool "marking is a fixpoint" true (List.for_all2 point_equal r.Pareto.points remarked);
  check_floats "front = non-dominated deadlines" r.Pareto.front
    (List.filter_map
       (fun p -> if p.Pareto.dominated then None else Some p.Pareto.deadline)
       r.Pareto.points)

let test_sweep_jobs_invariant () =
  let p = tiny_problem ~channel:`Rayleigh in
  let planner = alg "EEDCB" in
  let sequential = Pareto.sweep ~planner ~deadlines:grid p in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~num_domains:jobs () in
      let parallel =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () -> Pareto.sweep ~pool ~planner ~deadlines:grid p)
      in
      sweep_equal (Printf.sprintf "jobs %d" jobs) sequential parallel)
    [ 2; 4 ]

let test_sweep_rejects_bad_grids () =
  let p = tiny_problem ~channel:`Static in
  let raises label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (label ^ ": expected Invalid_argument")
  in
  raises "empty grid" (fun () -> Pareto.sweep ~planner:(alg "SPT") ~deadlines:[] p);
  raises "descending grid" (fun () ->
      Pareto.sweep ~planner:(alg "SPT") ~deadlines:[ 3000.; 1500. ] p);
  raises "beyond the span" (fun () ->
      Pareto.sweep ~planner:(alg "SPT") ~deadlines:[ 1500.; 7000. ] p)

let test_incompatible_state_rejected () =
  let p = tiny_problem ~channel:`Static in
  let state = Solve_state.create p in
  (* Wrong deadline direction: past the horizon. *)
  (match
     Solve_state.check_compatible state { p with Problem.deadline = 6000. } ~cap_per_node:None
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "deadline past the horizon: expected Invalid_argument");
  (* Wrong cap: the state's caches are keyed by the closure cap. *)
  (match Solve_state.check_compatible state p ~cap_per_node:(Some 7) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "cap mismatch: expected Invalid_argument");
  (* A planner handed an incompatible state refuses to run. *)
  let other = tiny_problem ~channel:`Rayleigh in
  let ctx = Planner.Ctx.make ~rng:(Rng.create 1) ~solve_state:state () in
  match Planner.run ~ctx (alg "EEDCB") other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign problem: expected Invalid_argument"

let () =
  Alcotest.run "pareto"
    [
      ( "grid",
        [
          Alcotest.test_case "of_list" `Quick test_grid_of_list;
          Alcotest.test_case "of_range" `Quick test_grid_of_range;
          Alcotest.test_case "parse" `Quick test_grid_parse;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "mark_dominated" `Quick test_mark_dominated;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "shared matches independent" `Quick
            test_sweep_shared_matches_independent;
          Alcotest.test_case "marking and front consistent" `Quick test_sweep_consistency;
          Alcotest.test_case "worker-count invariant" `Quick test_sweep_jobs_invariant;
          Alcotest.test_case "rejects bad grids" `Quick test_sweep_rejects_bad_grids;
          Alcotest.test_case "incompatible state rejected" `Quick
            test_incompatible_state_rejected;
        ] );
    ]
