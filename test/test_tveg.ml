(* Tests for tmedb_tveg: the TVEG model (Def. 3.2), discrete time sets
   (Section V) and discrete cost sets (Section VI-A). *)

open Tmedb_prelude
open Tmedb_channel
open Tmedb_tveg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let iv lo hi = Interval.make ~lo ~hi
let link lo hi dist = { Tveg.iv = iv lo hi; dist }
let span10 = iv 0. 10.

(* 0--1 on [0,4) at 10 m and [6,8) at 20 m; 1--2 on [3,7) at 15 m. *)
let sample ?(tau = 0.) () =
  Tveg.create ~n:3 ~span:span10 ~tau
    [ (0, 1, link 0. 4. 10.); (0, 1, link 6. 8. 20.); (1, 2, link 3. 7. 15.) ]

(* ------------------------------------------------------------------ *)
(* Tveg *)

let test_tveg_links_sorted () =
  let g = sample () in
  let ls = Tveg.links g 1 0 in
  check_int "two contacts" 2 (List.length ls);
  match ls with
  | [ a; b ] -> check_bool "sorted" true (a.Tveg.iv.Interval.lo < b.Tveg.iv.Interval.lo)
  | _ -> Alcotest.fail "expected two links"

let test_tveg_dist_at () =
  let g = sample () in
  Alcotest.(check (option (float 0.))) "first contact" (Some 10.) (Tveg.dist_at g 0 1 2.);
  Alcotest.(check (option (float 0.))) "second contact" (Some 20.) (Tveg.dist_at g 0 1 7.);
  Alcotest.(check (option (float 0.))) "gap" None (Tveg.dist_at g 0 1 5.)

let test_tveg_rho_tau () =
  let g = sample ~tau:1. () in
  check_bool "fits" true (Tveg.rho_tau g 0 1 2.9);
  check_bool "overruns" false (Tveg.rho_tau g 0 1 3.5);
  Alcotest.(check (option (float 0.))) "dist honours tau" None (Tveg.dist_at g 0 1 3.5)

let test_tveg_ed_at () =
  let g = sample () in
  let phy = Phy.default in
  (match Tveg.ed_at g ~phy ~channel:`Static 0 1 2. with
  | Ed_function.Step { w_th } ->
      check_bool "threshold from distance" true
        (Futil.approx_eq w_th (Phy.min_cost phy ~dist:10.))
  | _ -> Alcotest.fail "expected step");
  (match Tveg.ed_at g ~phy ~channel:`Rayleigh 0 1 2. with
  | Ed_function.Rayleigh _ -> ()
  | _ -> Alcotest.fail "expected rayleigh");
  match Tveg.ed_at g ~phy ~channel:`Static 0 2 2. with
  | Ed_function.Absent -> ()
  | _ -> Alcotest.fail "expected absent"

let test_tveg_neighbors () =
  let g = sample () in
  Alcotest.(check (list (pair int (float 0.)))) "node 1 at 3.5"
    [ (0, 10.); (2, 15.) ]
    (Tveg.neighbors_at g 1 3.5)

let test_tveg_of_trace () =
  let open Tmedb_trace in
  let trace =
    Trace.make ~n:3 ~span:span10 [ Contact.make ~a:0 ~b:1 ~iv:(iv 1. 2.) ~dist:5. ]
  in
  let g = Tveg.of_trace ~tau:0. trace in
  Alcotest.(check (option (float 0.))) "dist carried" (Some 5.) (Tveg.dist_at g 0 1 1.5)

let test_tveg_adjacent_partition () =
  let g = sample () in
  let p = Tveg.adjacent_partition g 1 in
  Alcotest.(check (array (float 1e-9))) "P^ad_1" [| 0.; 3.; 4.; 6.; 7.; 8.; 10. |]
    (Tmedb_tvg.Partition.points p)

let test_tveg_restrict () =
  let g = sample () in
  let r = Tveg.restrict g ~span:(iv 3. 7.) in
  Alcotest.(check (option (float 0.))) "clipped still there" (Some 10.) (Tveg.dist_at r 0 1 3.5);
  Alcotest.(check (option (float 0.))) "outside gone" None (Tveg.dist_at r 0 1 7.5)

let test_tveg_validation () =
  Alcotest.check_raises "bad distance" (Invalid_argument "Tveg.create: non-positive distance")
    (fun () -> ignore (Tveg.create ~n:2 ~span:span10 ~tau:0. [ (0, 1, link 0. 1. 0.) ]));
  Alcotest.check_raises "negative tau" (Invalid_argument "Tveg.create: negative tau") (fun () ->
      ignore (Tveg.create ~n:2 ~span:span10 ~tau:(-1.) []))

(* ------------------------------------------------------------------ *)
(* Dts *)

let test_dts_tau0_contains_adjacent_points () =
  let g = sample () in
  let dts = Dts.compute g ~deadline:10. in
  (* Node 0's own boundaries all present. *)
  let p0 = Dts.node_points dts 0 in
  List.iter
    (fun t -> check_bool (Printf.sprintf "point %g" t) true (Array.exists (Float.equal t) p0))
    [ 0.; 4.; 6.; 8. ]

let test_dts_tau0_closure_copies_points () =
  let g = sample () in
  let dts = Dts.compute g ~deadline:10. in
  (* Node 2's boundary 3 happens while 0--1 is live, so it must be
     copied onto nodes 1 and 0 (receive instants under tau = 0). *)
  let p0 = Dts.node_points dts 0 in
  check_bool "copied via closure" true (Array.exists (Float.equal 3.) p0)

let test_dts_deadline_clips () =
  let g = sample () in
  let dts = Dts.compute g ~deadline:5. in
  Array.iteri
    (fun i _ ->
      Array.iter
        (fun p -> check_bool "within deadline" true (p <= 5.))
        (Dts.node_points dts i))
    (Array.make 3 ())

let test_dts_tau_positive_propagates () =
  let g = sample ~tau:0.5 () in
  let dts = Dts.compute g ~deadline:10. in
  (* Node 1 can receive at 3 + 0.5 from node 2's boundary at 3
     (2 transmits at 3). *)
  let p1 = Dts.node_points dts 1 in
  check_bool "receive point 3.5" true (Array.exists (Float.equal 3.5) p1)

let test_dts_latest_at_or_before () =
  let g = sample () in
  let dts = Dts.compute g ~deadline:10. in
  (match Dts.latest_at_or_before dts 0 5. with
  | Some p -> check_bool "<= query" true (p <= 5.)
  | None -> Alcotest.fail "expected a point");
  check_bool "before first" true (Dts.latest_at_or_before dts 0 (-1.) = None)

let test_dts_index_of_point () =
  let g = sample () in
  let dts = Dts.compute g ~deadline:10. in
  let p0 = Dts.node_points dts 0 in
  Array.iteri
    (fun idx p ->
      Alcotest.(check (option int)) "index roundtrip" (Some idx) (Dts.index_of_point dts 0 p))
    p0;
  check_bool "missing point" true (Dts.index_of_point dts 0 99. = None)

let test_dts_cap_truncates () =
  (* The cap bounds propagation additions; a node always keeps its own
     adjacent-partition points. *)
  let g = sample ~tau:0.25 () in
  let cap = 3 in
  let dts = Dts.compute ~cap_per_node:cap g ~deadline:10. in
  for i = 0 to 2 do
    let base =
      Array.length (Tmedb_tvg.Partition.points (Tveg.adjacent_partition g i))
    in
    check_bool "capped" true (Array.length (Dts.node_points dts i) <= Stdlib.max base cap)
  done

let test_dts_earliest_at_or_after () =
  let g = sample () in
  let dts = Dts.compute g ~deadline:10. in
  (match Dts.earliest_at_or_after dts 0 5. with
  | Some p -> check_bool ">= query" true (p >= 5.)
  | None -> Alcotest.fail "expected a point");
  check_bool "past last" true (Dts.earliest_at_or_after dts 0 99. = None);
  (* Round-trip with latest_at_or_before around an existing point. *)
  let p0 = Dts.node_points dts 0 in
  Array.iter
    (fun p ->
      Alcotest.(check (option (float 0.))) "exact hit" (Some p) (Dts.earliest_at_or_after dts 0 p))
    p0

let test_dts_source_pruning () =
  (* 0--1 on [0,4); 1--2 on [3,7): node 2 cannot hold the packet from
     source 0 before t = 3, so its earlier points are pruned. *)
  let g =
    Tveg.create ~n:3 ~span:span10 ~tau:0. [ (0, 1, link 0. 4. 10.); (1, 2, link 3. 7. 10.) ]
  in
  let pruned = Dts.compute ~source:0 g ~deadline:10. in
  let unpruned = Dts.compute g ~deadline:10. in
  Array.iter
    (fun p -> check_bool "node 2 points >= 3" true (p >= 3.))
    (Dts.node_points pruned 2);
  check_bool "pruning shrinks" true (Dts.total_points pruned <= Dts.total_points unpruned);
  (* The source itself keeps its full point set. *)
  check_int "source keeps points" (Array.length (Dts.node_points unpruned 0))
    (Array.length (Dts.node_points pruned 0))

let test_dts_unreachable_sentinel () =
  let g = Tveg.create ~n:3 ~span:span10 ~tau:0. [ (0, 1, link 0. 4. 10.) ] in
  let dts = Dts.compute ~source:0 g ~deadline:10. in
  (* Node 2 is isolated: it still owns one sentinel point. *)
  check_int "sentinel" 1 (Array.length (Dts.node_points dts 2))

let test_dts_bad_deadline () =
  let g = sample () in
  Alcotest.check_raises "outside span"
    (Invalid_argument "Dts.compute: deadline outside the graph span") (fun () ->
      ignore (Dts.compute g ~deadline:11.))

(* Paper bound: with tau = 0 total points are O(N^2 L). *)
let test_dts_size_bound_tau0 () =
  let rng = Rng.create 99 in
  let entries = ref [] in
  let n = 6 in
  let contacts_per_pair = 3 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      for _ = 1 to contacts_per_pair do
        let lo = Rng.float rng 8. in
        let hi = Float.min 10. (lo +. 0.5 +. Rng.float rng 1.) in
        if hi > lo then entries := (i, j, link lo hi 5.) :: !entries
      done
    done
  done;
  let g = Tveg.create ~n ~span:span10 ~tau:0. !entries in
  let dts = Dts.compute g ~deadline:10. in
  (* L = max per-node adjacent-partition size. *)
  let l =
    List.fold_left
      (fun acc i ->
        Stdlib.max acc
          (Array.length (Tmedb_tvg.Partition.points (Tveg.adjacent_partition g i))))
      0
      (List.init n (fun i -> i))
  in
  check_bool "O(N^2 L)" true (Dts.total_points dts <= n * n * l)

(* ------------------------------------------------------------------ *)
(* Dcs *)

let test_dcs_static_levels () =
  let g = sample () in
  let phy = Phy.default in
  let levels = Dcs.at g ~phy ~channel:`Static ~node:1 ~time:3.5 in
  check_int "two levels" 2 (List.length levels);
  (match levels with
  | [ l1; l2 ] ->
      (* Nearest neighbour 0 at 10 m, then 2 at 15 m. *)
      Alcotest.(check (list int)) "level 1 covers" [ 0 ] l1.Dcs.covered;
      Alcotest.(check (list int)) "level 2 covers" [ 0; 2 ] l2.Dcs.covered;
      check_bool "increasing" true (l1.Dcs.cost < l2.Dcs.cost);
      check_bool "cost = min cost" true
        (Futil.approx_eq l1.Dcs.cost (Phy.min_cost phy ~dist:10.))
  | _ -> Alcotest.fail "expected two levels")

let test_dcs_rayleigh_uses_epsilon_cost () =
  let g = sample () in
  let phy = Phy.default in
  match Dcs.at g ~phy ~channel:`Rayleigh ~node:1 ~time:3.5 with
  | l1 :: _ ->
      check_bool "w0 weight" true
        (Futil.approx_eq l1.Dcs.cost (Phy.fading_reference_cost phy ~dist:10.))
  | [] -> Alcotest.fail "expected levels"

let test_dcs_empty_when_isolated () =
  let g = sample () in
  check_int "no neighbours" 0 (List.length (Dcs.at g ~phy:Phy.default ~channel:`Static ~node:2 ~time:1.))

let test_dcs_drops_beyond_wmax () =
  let g = sample () in
  (* A w_max below the 15 m cost keeps only the 10 m neighbour. *)
  let phy = Phy.make ~w_max:(Phy.min_cost Phy.default ~dist:12.) () in
  let levels = Dcs.at g ~phy ~channel:`Static ~node:1 ~time:3.5 in
  check_int "one level" 1 (List.length levels);
  match levels with
  | [ l ] -> Alcotest.(check (list int)) "nearest only" [ 0 ] l.Dcs.covered
  | _ -> Alcotest.fail "expected one level"

let test_dcs_equal_costs_merge () =
  let g =
    Tveg.create ~n:3 ~span:span10 ~tau:0. [ (0, 1, link 0. 5. 10.); (0, 2, link 0. 5. 10.) ]
  in
  let levels = Dcs.at g ~phy:Phy.default ~channel:`Static ~node:0 ~time:1. in
  check_int "merged" 1 (List.length levels);
  match levels with
  | [ l ] -> Alcotest.(check (list int)) "both covered" [ 1; 2 ] l.Dcs.covered
  | _ -> Alcotest.fail "expected a single level"

let test_dcs_level_covering () =
  let g = sample () in
  let levels = Dcs.at g ~phy:Phy.default ~channel:`Static ~node:1 ~time:3.5 in
  (match Dcs.level_covering levels ~k:2 with
  | Some l -> check_int "covers 2" 2 (List.length l.Dcs.covered)
  | None -> Alcotest.fail "expected level");
  check_bool "cannot cover 3" true (Dcs.level_covering levels ~k:3 = None)

(* Property 6.1 (broadcast nature) on random instances: every level's
   covered set contains the previous level's. *)
let prop_dcs_nested =
  QCheck.Test.make ~name:"DCS levels nested (Property 6.1)" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 5 in
      let entries = ref [] in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if Rng.bool rng then begin
            let d = 5. +. Rng.float rng 50. in
            entries := (i, j, link 0. 10. d) :: !entries
          end
        done
      done;
      let g = Tveg.create ~n ~span:span10 ~tau:0. !entries in
      let levels = Dcs.at g ~phy:Phy.default ~channel:`Static ~node:0 ~time:1. in
      let rec nested = function
        | a :: (b :: _ as rest) ->
            List.for_all (fun x -> List.mem x b.Dcs.covered) a.Dcs.covered
            && a.Dcs.cost <= b.Dcs.cost && nested rest
        | _ -> true
      in
      nested levels)

let prop_dts_points_in_range =
  QCheck.Test.make ~name:"DTS points within [span.lo, deadline]" ~count:50 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 4 in
      let entries = ref [] in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if Rng.bool rng then begin
            let lo = Rng.float rng 8. in
            let hi = Float.min 10. (lo +. 0.5 +. Rng.float rng 2.) in
            if hi > lo then entries := (i, j, link lo hi 10.) :: !entries
          end
        done
      done;
      let g = Tveg.create ~n ~span:span10 ~tau:0. !entries in
      let deadline = 5. +. Rng.float rng 5. in
      let dts = Dts.compute g ~deadline in
      let ok = ref true in
      for i = 0 to n - 1 do
        Array.iter (fun p -> if p < 0. || p > deadline then ok := false) (Dts.node_points dts i)
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Dts.Stream: the per-deadline view of one shared stream must be the
   eager closure of the deadline-restricted graph — exactly what the
   one-shot solve path computes (restrict, then Dts.compute). *)

let check_dts_equal msg eager view =
  check_int (msg ^ " nodes") (Dts.num_nodes eager) (Dts.num_nodes view);
  for i = 0 to Dts.num_nodes eager - 1 do
    Alcotest.(check (array (float 0.)))
      (Printf.sprintf "%s node %d" msg i)
      (Dts.node_points eager i) (Dts.node_points view i)
  done

let eager_at ?source g ~deadline =
  Dts.compute ?source (Tveg.restrict g ~span:(iv 0. deadline)) ~deadline

let test_stream_endpoints () =
  let g = sample () in
  let stream = Dts.Stream.create g in
  (* Deadlines hit contact endpoints (3, 4, 7, 8), interior instants
     and the span end; the final 4. re-reads an already-passed horizon. *)
  List.iter
    (fun deadline ->
      check_dts_equal
        (Printf.sprintf "tau0 T=%g" deadline)
        (eager_at g ~deadline)
        (Dts.Stream.dts_at stream ~deadline))
    [ 3.; 4.; 5.; 6.5; 7.; 8.; 10.; 4. ]

let test_stream_endpoints_tau_positive () =
  let g = sample ~tau:1. () in
  let stream = Dts.Stream.create g in
  List.iter
    (fun deadline ->
      check_dts_equal
        (Printf.sprintf "tau1 T=%g" deadline)
        (eager_at g ~deadline)
        (Dts.Stream.dts_at stream ~deadline))
    [ 3.; 4.; 5.; 7.; 10. ]

let test_stream_sentinel_and_source () =
  let g = sample () in
  let stream = Dts.Stream.create ~source:0 g in
  (* Node 2's earliest arrival from 0 is 3 (via 1 on [3,7)): at T = 2
     it is unreachable and must keep the single sentinel point. *)
  let view = Dts.Stream.dts_at stream ~deadline:2. in
  Alcotest.(check (array (float 0.))) "sentinel" [| 0. |] (Dts.node_points view 2);
  check_dts_equal "pruned T=2" (eager_at ~source:0 g ~deadline:2.) view;
  check_dts_equal "pruned T=5"
    (eager_at ~source:0 g ~deadline:5.)
    (Dts.Stream.dts_at stream ~deadline:5.)

let test_stream_cap_truncates () =
  let stream = Dts.Stream.create ~cap_per_node:1 (sample ~tau:1. ()) in
  Dts.Stream.advance stream ~horizon:10.;
  check_bool "truncated" true (Dts.Stream.truncated stream)

let test_stream_bad_deadline () =
  let stream = Dts.Stream.create (sample ()) in
  Alcotest.check_raises "beyond span"
    (Invalid_argument "Dts.Stream.advance: horizon beyond the graph span")
    (fun () -> Dts.Stream.advance stream ~horizon:11.);
  Alcotest.check_raises "at span start"
    (Invalid_argument "Dts.Stream.dts_at: deadline outside the graph span")
    (fun () -> ignore (Dts.Stream.dts_at stream ~deadline:0.))

(* Satellite property: for any time cap T, the lazily generated points
   viewed at T equal the eager closure truncated at T (i.e. computed on
   the [0,T]-restricted graph), including the endpoint itself.  Three
   ascending deadlines per instance exercise incremental advances. *)
let prop_stream_matches_eager ~name ~tau ~source =
  QCheck.Test.make ~name ~count:50 QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 4 in
      let entries = ref [] in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if Rng.bool rng then begin
            let lo = Rng.float rng 8. in
            let hi = Float.min 10. (lo +. 0.5 +. Rng.float rng 2.) in
            if hi > lo then entries := (i, j, link lo hi 10.) :: !entries
          end
        done
      done;
      let g = Tveg.create ~n ~span:span10 ~tau !entries in
      let stream = Dts.Stream.create ?source g in
      let points_equal a b =
        Dts.num_nodes a = Dts.num_nodes b
        && List.for_all
             (fun i ->
               let pa = Dts.node_points a i and pb = Dts.node_points b i in
               Array.length pa = Array.length pb && Array.for_all2 Float.equal pa pb)
             (List.init (Dts.num_nodes a) Fun.id)
      in
      List.for_all
        (fun deadline ->
          points_equal (eager_at ?source g ~deadline) (Dts.Stream.dts_at stream ~deadline))
        [ 1. +. Rng.float rng 3.; 4. +. Rng.float rng 3.; 7. +. Rng.float rng 3. ])

let prop_stream_eager_tau0 =
  prop_stream_matches_eager ~name:"stream view = eager restricted closure (tau 0)" ~tau:0.
    ~source:None

let prop_stream_eager_tau_positive =
  prop_stream_matches_eager ~name:"stream view = eager restricted closure (tau 1)" ~tau:1.
    ~source:None

let prop_stream_eager_source =
  prop_stream_matches_eager ~name:"stream view = eager restricted closure (source)" ~tau:0.
    ~source:(Some 0)

(* ------------------------------------------------------------------ *)
(* Nondet *)

let nondet_sample_graph () =
  Nondet.create ~n:3 ~span:span10 ~tau:0.
    [
      { Nondet.a = 0; b = 1; link = link 0. 5. 10.; presence_prob = 1. };
      { Nondet.a = 1; b = 2; link = link 4. 8. 15.; presence_prob = 0.5 };
      { Nondet.a = 0; b = 2; link = link 6. 9. 30.; presence_prob = 0.1 };
    ]

let test_nondet_support () =
  let nd = nondet_sample_graph () in
  let s = Nondet.support nd in
  check_bool "all contacts present" true
    (Tveg.rho_tau s 0 1 1. && Tveg.rho_tau s 1 2 5. && Tveg.rho_tau s 0 2 7.)

let test_nondet_threshold () =
  let nd = nondet_sample_graph () in
  let t = Nondet.threshold nd ~min_prob:0.4 in
  check_bool "certain link kept" true (Tveg.rho_tau t 0 1 1.);
  check_bool "likely link kept" true (Tveg.rho_tau t 1 2 5.);
  check_bool "unlikely link dropped" false (Tveg.rho_tau t 0 2 7.)

let test_nondet_sample_respects_probabilities () =
  let nd = nondet_sample_graph () in
  let rng = Rng.create 31 in
  let kept_05 = ref 0 and kept_1 = ref 0 and trials = 2000 in
  for _ = 1 to trials do
    let r = Nondet.sample rng nd in
    if Tveg.rho_tau r 1 2 5. then incr kept_05;
    if Tveg.rho_tau r 0 1 1. then incr kept_1
  done;
  check_int "certain link always kept" trials !kept_1;
  let rate = float_of_int !kept_05 /. float_of_int trials in
  check_bool "half-probability link near 0.5" true (Float.abs (rate -. 0.5) < 0.05)

let test_nondet_of_tveg () =
  let g = sample () in
  let nd = Nondet.of_tveg g ~presence_prob:0.7 in
  check_int "all contacts lifted" 3 (List.length (Nondet.contacts nd));
  List.iter
    (fun c -> check_bool "prob carried" true (c.Nondet.presence_prob = 0.7))
    (Nondet.contacts nd)

let test_nondet_validation () =
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Nondet.create: probability outside [0,1]") (fun () ->
      ignore
        (Nondet.create ~n:2 ~span:span10 ~tau:0.
           [ { Nondet.a = 0; b = 1; link = link 0. 1. 5.; presence_prob = 1.5 } ]))

let test_nondet_evaluate () =
  let nd = nondet_sample_graph () in
  let r =
    Nondet.evaluate ~trials:50 ~rng:(Rng.create 3) nd ~check:(fun realization ->
        (* Score: 1 if the flaky 1-2 link materialised. *)
        if Tveg.rho_tau realization 1 2 5. then (1., true, 0.) else (0., false, 1.))
  in
  check_int "trials" 50 r.Nondet.trials;
  check_bool "rate near 1/2" true (0.2 < r.Nondet.mean_delivery && r.Nondet.mean_delivery < 0.8);
  check_bool "waste complements delivery" true
    (Float.abs (r.Nondet.mean_delivery +. r.Nondet.mean_energy_wasted -. 1.) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Scale scenario generator *)

let test_scale_deterministic_and_shaped () =
  let params = { Scale.default_params with Scale.cluster = 10; epochs = 2 } in
  let g1 = Scale.scenario ~params ~n:30 () in
  let g2 = Scale.scenario ~params ~n:30 () in
  Alcotest.(check int) "n" 30 (Tveg.n g1);
  let links_equal a b =
    List.equal
      (fun (x : Tveg.link) (y : Tveg.link) ->
        Interval.equal x.Tveg.iv y.Tveg.iv && Float.equal x.Tveg.dist y.Tveg.dist)
      a b
  in
  for i = 0 to 29 do
    for j = i + 1 to 29 do
      Alcotest.(check bool)
        (Printf.sprintf "links %d-%d deterministic" i j)
        true
        (links_equal (Tveg.links g1 i j) (Tveg.links g2 i j))
    done
  done;
  (* Hubs star their members and bridge to the next hub; members of
     different clusters never meet directly. *)
  Alcotest.(check bool) "hub star" true (Tveg.links g1 0 5 <> []);
  Alcotest.(check bool) "ring bridge" true (Tveg.links g1 0 10 <> []);
  Alcotest.(check bool) "member meeting" true (Tveg.links g1 3 7 <> []);
  Alcotest.(check bool) "no cross-cluster member contact" true (Tveg.links g1 3 13 = []);
  (* The backbone is cheap, member meetings are far. *)
  List.iter
    (fun (l : Tveg.link) ->
      Alcotest.(check bool) "near range" true (l.Tveg.dist >= 8. && l.Tveg.dist <= 16.))
    (Tveg.links g1 0 5);
  List.iter
    (fun (l : Tveg.link) ->
      Alcotest.(check bool) "far range" true (l.Tveg.dist >= 240. && l.Tveg.dist <= 420.))
    (Tveg.links g1 3 7);
  (* Broadcast from the first hub can reach everyone by the deadline. *)
  let arr = Tveg.earliest_arrival g1 ~src:0 ~t0:0. in
  Array.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d reachable" i)
        true
        (a <= Scale.deadline ~params ()))
    arr

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tveg"
    [
      ( "scale",
        [ Alcotest.test_case "deterministic and shaped" `Quick test_scale_deterministic_and_shaped ] );
      ( "tveg",
        [
          tc "links sorted" test_tveg_links_sorted;
          tc "dist_at" test_tveg_dist_at;
          tc "rho_tau" test_tveg_rho_tau;
          tc "ed_at" test_tveg_ed_at;
          tc "neighbors" test_tveg_neighbors;
          tc "of_trace" test_tveg_of_trace;
          tc "adjacent partition" test_tveg_adjacent_partition;
          tc "restrict" test_tveg_restrict;
          tc "validation" test_tveg_validation;
        ] );
      ( "dts",
        [
          tc "tau0 adjacent points" test_dts_tau0_contains_adjacent_points;
          tc "tau0 closure copies" test_dts_tau0_closure_copies_points;
          tc "deadline clips" test_dts_deadline_clips;
          tc "tau>0 propagates" test_dts_tau_positive_propagates;
          tc "latest at or before" test_dts_latest_at_or_before;
          tc "index of point" test_dts_index_of_point;
          tc "cap truncates" test_dts_cap_truncates;
          tc "earliest at or after" test_dts_earliest_at_or_after;
          tc "source pruning" test_dts_source_pruning;
          tc "unreachable sentinel" test_dts_unreachable_sentinel;
          tc "bad deadline" test_dts_bad_deadline;
          tc "size bound tau0" test_dts_size_bound_tau0;
          QCheck_alcotest.to_alcotest prop_dts_points_in_range;
          tc "stream endpoints" test_stream_endpoints;
          tc "stream endpoints tau>0" test_stream_endpoints_tau_positive;
          tc "stream sentinel/source" test_stream_sentinel_and_source;
          tc "stream cap truncates" test_stream_cap_truncates;
          tc "stream bad deadline" test_stream_bad_deadline;
          QCheck_alcotest.to_alcotest prop_stream_eager_tau0;
          QCheck_alcotest.to_alcotest prop_stream_eager_tau_positive;
          QCheck_alcotest.to_alcotest prop_stream_eager_source;
        ] );
      ( "dcs",
        [
          tc "static levels" test_dcs_static_levels;
          tc "rayleigh epsilon-cost" test_dcs_rayleigh_uses_epsilon_cost;
          tc "empty when isolated" test_dcs_empty_when_isolated;
          tc "drops beyond w_max" test_dcs_drops_beyond_wmax;
          tc "equal costs merge" test_dcs_equal_costs_merge;
          tc "level covering" test_dcs_level_covering;
          QCheck_alcotest.to_alcotest prop_dcs_nested;
        ] );
      ( "nondet",
        [
          tc "support" test_nondet_support;
          tc "threshold" test_nondet_threshold;
          tc "sample respects probabilities" test_nondet_sample_respects_probabilities;
          tc "of_tveg" test_nondet_of_tveg;
          tc "validation" test_nondet_validation;
          tc "evaluate" test_nondet_evaluate;
        ] );
    ]
