(* Tests for the typed phase of tmedb-lint (lib/lint phase 2): the
   call-graph walker, the effect fixpoint, and the interprocedural
   rules R7-R9.  Fixtures are real OCaml sources compiled out-of-tree
   with `ocamlc -bin-annot -c` — the same .cmt format dune produces —
   then loaded through Lint_callgraph.load_cmt, so the tests exercise
   the exact binary path the CLI uses.  Each fixture carries its own
   mini Pool / Rng module: classification is suffix-based, so the
   analyzer treats them exactly like the real ones, and the fixtures
   stay dependency-free. *)

let check_bool = Alcotest.(check bool)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

(* ------------------------------------------------------------------ *)
(* Fixture compilation *)

let fresh_dir () =
  let tmp = Filename.temp_file "tmedb_lint_typed" "" in
  Sys.remove tmp;
  if Sys.command (Printf.sprintf "mkdir -p %s" (Filename.quote tmp)) <> 0 then
    Alcotest.fail "could not create fixture directory";
  tmp

(* [load files] writes each (name, source), compiles them in order in
   one ocamlc invocation, and loads the resulting cmts. *)
let load files =
  let dir = fresh_dir () in
  List.iter
    (fun (name, src) ->
      let oc = open_out (Filename.concat dir name) in
      output_string oc src;
      close_out oc)
    files;
  let cmd =
    Printf.sprintf "cd %s && ocamlc -bin-annot -c %s >/dev/null 2>&1"
      (Filename.quote dir)
      (String.concat " " (List.map (fun (n, _) -> Filename.quote n) files))
  in
  if Sys.command cmd <> 0 then
    Alcotest.failf "fixture did not compile: %s"
      (String.concat " " (List.map fst files));
  List.map
    (fun (name, _) ->
      let cmt = Filename.concat dir (Filename.remove_extension name ^ ".cmt") in
      match Lint_callgraph.load_cmt cmt with
      | Ok (Some u) -> u
      | Ok None -> Alcotest.failf "%s: no implementation in cmt" name
      | Error e -> Alcotest.failf "load_cmt: %s" e)
    files

let run ?only ?allowlist files = Lint_rules_typed.run ?only ?allowlist (load files)
let ids fs = List.map (fun f -> f.Lint.rule.Lint.id) fs

let fires rule ?only files =
  Alcotest.(check (list string))
    (Printf.sprintf "%s fires" rule)
    [ rule ]
    (ids (run ?only files))

let silent ?only files =
  Alcotest.(check (list string)) "silent" [] (ids (run ?only files))

(* The mini runtime every single-file fixture embeds. *)
let pool_mod =
  "module Pool = struct\n\
  \  type t = unit\n\
  \  let map (_ : t) (f : 'a -> 'b) (xs : 'a array) : 'b array = Array.map f xs\n\
   end\n"

let rng_mod =
  "module Rng = struct\n\
  \  type t = { mutable s : int }\n\
  \  let create n = { s = n }\n\
  \  let int (r : t) b = r.s <- r.s + 1; r.s mod b\n\
  \  let split (r : t) = { s = r.s + 1 }\n\
   end\n"

(* ------------------------------------------------------------------ *)
(* R7 pool-task-purity *)

let test_r7_direct () =
  (* Fire: the task writes a module-level ref. *)
  fires "pool-task-purity" ~only:[ "pool-task-purity" ]
    [
      ( "fix_direct.ml",
        pool_mod ^ "let hits = ref 0\n"
        ^ "let run () = Pool.map () (fun i -> hits := !hits + i; i) [| 1; 2 |]\n"
      );
    ];
  (* Fire: module-level mutable record field. *)
  fires "pool-task-purity" ~only:[ "pool-task-purity" ]
    [
      ( "fix_field.ml",
        pool_mod ^ "type s = { mutable n : int }\nlet st = { n = 0 }\n"
        ^ "let run () = Pool.map () (fun i -> st.n <- i; i) [| 1 |]\n" );
    ]

let test_r7_chain () =
  (* Fire: the write hides behind two calls across three modules, and
     the finding prints the whole chain down to the write site. *)
  let fs =
    run ~only:[ "pool-task-purity" ]
      [
        ("m_c.ml", "let counter = ref 0\nlet bump () = counter := !counter + 1\n");
        ("m_b.ml", "let relay () = M_c.bump ()\n");
        ( "m_a.ml",
          pool_mod
          ^ "let run () = Pool.map () (fun i -> M_b.relay (); i) [| 1; 2 |]\n" );
      ]
  in
  Alcotest.(check (list string)) "chain fires" [ "pool-task-purity" ] (ids fs);
  let msg = (List.hd fs).Lint.message in
  check_bool "chain names every hop" true
    (contains ~affix:"Pool.map -> <task> -> M_b.relay -> M_c.bump" msg);
  check_bool "chain ends at the write site" true
    (contains ~affix:"ref assignment on counter (m_c.ml:2)" msg)

let test_r7_silent_twins () =
  (* Atomic counter: domain-safe by construction. *)
  silent ~only:[ "pool-task-purity" ]
    [
      ( "fix_atomic.ml",
        pool_mod ^ "let hits = Atomic.make 0\n"
        ^ "let run () = Pool.map () (fun i -> Atomic.incr hits; i) [| 1 |]\n" );
    ];
  (* Domain-local storage. *)
  silent ~only:[ "pool-task-purity" ]
    [
      ( "fix_dls.ml",
        pool_mod ^ "let slot = Domain.DLS.new_key (fun () -> 0)\n"
        ^ "let run () = Pool.map () (fun i -> Domain.DLS.set slot i; i) [| 1 |]\n"
      );
    ];
  (* Mutex.protect-guarded write (R9 would still flag the lock; R7 is
     what this twin is about, hence ~only). *)
  silent ~only:[ "pool-task-purity" ]
    [
      ( "fix_guarded.ml",
        pool_mod ^ "let m = Mutex.create ()\nlet hits = ref 0\n"
        ^ "let run () = Pool.map () (fun i -> Mutex.protect m (fun () -> incr \
           hits); i) [| 1 |]\n" );
    ];
  (* Writing the enclosing function's own array is the pool result-slot
     idiom: locals are lexically inherited, not shared. *)
  silent ~only:[ "pool-task-purity" ]
    [
      ( "fix_local.ml",
        pool_mod
        ^ "let run () =\n  let out = Array.make 2 0 in\n\
          \  ignore (Pool.map () (fun i -> out.(i) <- i; i) [| 0; 1 |]);\n  out\n"
      );
    ]

let test_r7_def_site_allow () =
  (* A justified [@lint.allow] at the write's definition clears the
     effect before propagation: every caller stays quiet. *)
  silent ~only:[ "pool-task-purity" ]
    [
      ( "m_c.ml",
        "let counter = ref 0\n\
         let[@lint.allow \"pool-task-purity\"] bump () = counter := !counter + 1\n"
      );
      ("m_b.ml", "let relay () = M_c.bump ()\n");
      ( "m_a.ml",
        pool_mod
        ^ "let run () = Pool.map () (fun i -> M_b.relay (); i) [| 1; 2 |]\n" );
    ]

(* ------------------------------------------------------------------ *)
(* R8 rng-taint *)

let test_r8 () =
  (* Fire: the task captures a shared Rng.t handle. *)
  let fs =
    run ~only:[ "rng-taint" ]
      [
        ( "fix_rng.ml",
          pool_mod ^ rng_mod ^ "let shared = Rng.create 1\n"
          ^ "let run () = Pool.map () (fun i -> Rng.int shared 6 + i) [| 1 |]\n"
        );
      ]
  in
  Alcotest.(check (list string)) "capture fires" [ "rng-taint" ] (ids fs);
  check_bool "finding names the captured handle" true
    (contains ~affix:"shared" (List.hd fs).Lint.message);
  (* Silent twin: the split discipline — the handle is a task
     parameter, split per task up front. *)
  silent ~only:[ "rng-taint" ]
    [
      ( "fix_rng_ok.ml",
        pool_mod ^ rng_mod
        ^ "let run rng =\n\
          \  let rngs = Array.init 2 (fun _ -> Rng.split rng) in\n\
          \  Pool.map () (fun r -> Rng.int r 6) rngs\n" );
    ]

(* ------------------------------------------------------------------ *)
(* R9 blocking-in-task *)

let test_r9 () =
  (* Fire: a lock acquired inside the task. *)
  fires "blocking-in-task" ~only:[ "blocking-in-task" ]
    [
      ( "fix_lock.ml",
        pool_mod ^ "let m = Mutex.create ()\n"
        ^ "let run () = Pool.map () (fun i -> Mutex.lock m; Mutex.unlock m; i) \
           [| 1 |]\n" );
    ];
  (* Fire: blocking reached through a named function passed as the
     task. *)
  fires "blocking-in-task" ~only:[ "blocking-in-task" ]
    [
      ( "fix_lock_ref.ml",
        pool_mod ^ "let m = Mutex.create ()\n"
        ^ "let work i = Mutex.lock m; Mutex.unlock m; i\n"
        ^ "let run () = Pool.map () work [| 1 |]\n" );
    ];
  (* Silent twin: pure compute task. *)
  silent ~only:[ "blocking-in-task" ]
    [
      ( "fix_pure.ml",
        pool_mod ^ "let run () = Pool.map () (fun i -> i * i + 1) [| 1; 2 |]\n"
      );
    ]

(* ------------------------------------------------------------------ *)
(* Call graph *)

let test_callgraph_edges () =
  (* Cross-module edges resolve through the normalized symbols,
     including calls made from inside the task closure. *)
  let units =
    load
      [
        ("m_c.ml", "let counter = ref 0\nlet bump () = counter := !counter + 1\n");
        ("m_b.ml", "let relay () = M_c.bump ()\n");
        ( "m_a.ml",
          pool_mod
          ^ "let run () = Pool.map () (fun i -> M_b.relay (); i) [| 1; 2 |]\n" );
      ]
  in
  let edges = Lint_callgraph.edges units in
  let has e = List.mem e edges in
  check_bool "task closure edge resolved" true (has ("M_a.run", "M_b.relay"));
  check_bool "cross-module relay edge resolved" true
    (has ("M_b.relay", "M_c.bump"))

let test_effects_summaries () =
  (* The solved signatures carry the lattice level and taints the dump
     reports. *)
  let units =
    load
      [
        ( "fix_sum.ml",
          "let hits = ref 0\n\
           let poke () = hits := 1\n\
           let peek () = !hits\n\
           let calc x = x * 2\n" );
      ]
  in
  let defs = Lint_callgraph.defs units in
  let resolve = Lint_callgraph.resolver units in
  let summaries, _ = Lint_effects.solve ~resolve defs in
  let level sym =
    match Hashtbl.find_opt summaries sym with
    | Some s -> Lint_effects.level s
    | None -> Alcotest.failf "no summary for %s" sym
  in
  Alcotest.(check string) "writer" "writes_shared" (level "Fix_sum.poke");
  Alcotest.(check string) "reader" "reads_shared" (level "Fix_sum.peek");
  Alcotest.(check string) "pure" "pure" (level "Fix_sum.calc")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "lint_typed"
    [
      ( "r7",
        [
          tc "direct write fires" test_r7_direct;
          tc "write behind two calls, full chain" test_r7_chain;
          tc "silent twins (Atomic, DLS, guarded, result-slot)" test_r7_silent_twins;
          tc "definition-site [@lint.allow]" test_r7_def_site_allow;
        ] );
      ("r8", [ tc "shared Rng.t capture" test_r8 ]);
      ("r9", [ tc "blocking in task" test_r9 ]);
      ( "callgraph",
        [
          tc "resolved cross-module edges" test_callgraph_edges;
          tc "effect summaries" test_effects_summaries;
        ] );
    ]
