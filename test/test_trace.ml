(* Tests for tmedb_trace: contacts, traces + CSV round-trip, the
   Haggle-like synthetic generator and random-waypoint mobility. *)

open Tmedb_prelude
open Tmedb_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let iv lo hi = Interval.make ~lo ~hi

(* ------------------------------------------------------------------ *)
(* Contact *)

let test_contact_normalizes () =
  let c = Contact.make ~a:5 ~b:2 ~iv:(iv 1. 3.) ~dist:10. in
  check_int "a" 2 c.Contact.a;
  check_int "b" 5 c.Contact.b;
  Alcotest.(check (float 0.)) "duration" 2. (Contact.duration c)

let test_contact_validation () =
  Alcotest.check_raises "self" (Invalid_argument "Contact.make: self-contact") (fun () ->
      ignore (Contact.make ~a:1 ~b:1 ~iv:(iv 0. 1.) ~dist:1.));
  Alcotest.check_raises "distance" (Invalid_argument "Contact.make: non-positive distance")
    (fun () -> ignore (Contact.make ~a:0 ~b:1 ~iv:(iv 0. 1.) ~dist:0.))

let test_contact_ends () =
  let c = Contact.make ~a:1 ~b:4 ~iv:(iv 0. 1.) ~dist:1. in
  check_bool "involves" true (Contact.involves c 4);
  check_bool "not involves" false (Contact.involves c 2);
  check_int "other end" 1 (Contact.other_end c 4)

(* ------------------------------------------------------------------ *)
(* Trace *)

let sample_trace () =
  Trace.make ~n:4 ~span:(iv 0. 100.)
    [
      Contact.make ~a:0 ~b:1 ~iv:(iv 10. 20.) ~dist:5.;
      Contact.make ~a:0 ~b:1 ~iv:(iv 40. 50.) ~dist:7.;
      Contact.make ~a:2 ~b:3 ~iv:(iv 5. 95.) ~dist:12.;
    ]

let test_trace_sorted () =
  let t = sample_trace () in
  let starts = List.map (fun c -> c.Contact.iv.Interval.lo) (Trace.contacts t) in
  Alcotest.(check (list (float 0.))) "sorted by start" [ 5.; 10.; 40. ] starts

let test_trace_validation () =
  Alcotest.check_raises "node range" (Invalid_argument "Trace.make: contact node out of range")
    (fun () ->
      ignore
        (Trace.make ~n:2 ~span:(iv 0. 10.) [ Contact.make ~a:0 ~b:5 ~iv:(iv 0. 1.) ~dist:1. ]))

let test_trace_restrict () =
  let t = sample_trace () in
  let r = Trace.restrict t ~span:(iv 15. 45.) in
  check_int "clipped count" 3 (Trace.num_contacts r);
  List.iter
    (fun c -> check_bool "inside window" true (Interval.contains (iv 15. 45.) c.Contact.iv))
    (Trace.contacts r)

let test_trace_to_tvg () =
  let g = Trace.to_tvg (sample_trace ()) in
  check_bool "0-1 at 15" true (Tmedb_tvg.Tvg.present g 0 1 15.);
  check_bool "0-1 at 30" false (Tmedb_tvg.Tvg.present g 0 1 30.);
  check_bool "2-3 at 50" true (Tmedb_tvg.Tvg.present g 2 3 50.)

let test_csv_roundtrip () =
  let t = sample_trace () in
  match Trace.of_csv (Trace.to_csv t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      check_int "n" (Trace.n t) (Trace.n t');
      check_int "contacts" (Trace.num_contacts t) (Trace.num_contacts t');
      List.iter2
        (fun a b ->
          check_bool "same contact" true
            (a.Contact.a = b.Contact.a && a.Contact.b = b.Contact.b
            && Interval.equal a.Contact.iv b.Contact.iv
            && a.Contact.dist = b.Contact.dist))
        (Trace.contacts t) (Trace.contacts t')

let test_csv_headerless () =
  let body = "0,1,2.0,3.0,7.5\n2,3,1.0,9.0,12.0\n" in
  match Trace.of_csv body with
  | Error e -> Alcotest.fail e
  | Ok t ->
      check_int "derived n" 4 (Trace.n t);
      check_int "contacts" 2 (Trace.num_contacts t)

let test_csv_bad_line () =
  match Trace.of_csv "0,1,notanumber,3,1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_csv_comments_and_blanks () =
  let body = "# a comment\n\n0,1,1.0,2.0,3.0\n" in
  match Trace.of_csv body with
  | Error e -> Alcotest.fail e
  | Ok t -> check_int "one contact" 1 (Trace.num_contacts t)

let test_save_load () =
  let t = sample_trace () in
  let path = Filename.temp_file "tmedb" ".csv" in
  Trace.save t ~path;
  (match Trace.load ~path with
  | Error e -> Alcotest.fail e
  | Ok t' -> check_int "same" (Trace.num_contacts t) (Trace.num_contacts t'));
  Sys.remove path

let test_trace_stats () =
  let s = Trace.stats (sample_trace ()) in
  check_int "contacts" 3 s.Trace.num_contacts;
  check_int "pairs" 2 s.Trace.pairs_with_contact;
  (* One gap: [20, 40) on pair 0-1. *)
  Alcotest.(check (float 1e-9)) "gap" 20. s.Trace.mean_inter_contact;
  Alcotest.(check (float 1e-9)) "mean duration" (110. /. 3.) s.Trace.mean_duration

(* [Trace.stats] folds inter-contact gaps in sorted pair order (the
   lint-R1 rewrite), so the result must be bit-identical no matter how
   the contact list was ordered when the trace was built. *)
let test_trace_stats_order_invariant () =
  let contacts =
    List.concat_map
      (fun (a, b) ->
        List.map
          (fun (lo, hi) -> Contact.make ~a ~b ~iv:(iv lo hi) ~dist:(10. +. float_of_int (a + b)))
          [ (0., 10.); (25., 40.); (55., 70.) ])
      [ (0, 1); (1, 2); (0, 3); (2, 3); (1, 4) ]
  in
  let stats_of cs = Trace.stats (Trace.make ~n:5 ~span:(iv 0. 100.) cs) in
  let reference = stats_of contacts in
  List.iter
    (fun cs -> check_bool "permuted contacts, same stats" true (stats_of cs = reference))
    [ List.rev contacts; List.sort (fun a b -> compare b a) contacts ]

(* ------------------------------------------------------------------ *)
(* Synth *)

let test_synth_deterministic () =
  let p = Synth.default_params in
  let a = Synth.generate (Rng.create 5) p in
  let b = Synth.generate (Rng.create 5) p in
  check_int "same count" (Trace.num_contacts a) (Trace.num_contacts b);
  check_bool "same csv" true (Trace.to_csv a = Trace.to_csv b)

let test_synth_within_bounds () =
  let p = { Synth.default_params with Synth.n = 10; horizon = 5000. } in
  let t = Synth.generate (Rng.create 9) p in
  check_int "n" 10 (Trace.n t);
  List.iter
    (fun c ->
      check_bool "in span" true (Interval.contains (iv 0. 5000.) c.Contact.iv);
      check_bool "distance range" true
        (p.Synth.dist_lo <= c.Contact.dist && c.Contact.dist <= p.Synth.dist_hi))
    (Trace.contacts t)

let test_synth_no_pair_overlap () =
  let t = Synth.generate (Rng.create 3) { Synth.default_params with Synth.n = 6 } in
  let by_pair = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let key = (c.Contact.a, c.Contact.b) in
      Hashtbl.replace by_pair key
        (c :: Option.value ~default:[] (Hashtbl.find_opt by_pair key)))
    (Trace.contacts t);
  Hashtbl.iter
    (fun _ cs ->
      let sorted = List.sort Contact.compare_by_start cs in
      let rec walk = function
        | x :: (y :: _ as rest) ->
            check_bool "no overlap within pair" true
              (x.Contact.iv.Interval.hi <= y.Contact.iv.Interval.lo);
            walk rest
        | _ -> ()
      in
      walk sorted)
    by_pair

let test_synth_heavy_tail () =
  (* Inter-contact gaps should be right-skewed: mean well above median. *)
  let t = Synth.generate (Rng.create 1) Synth.default_params in
  let s = Trace.stats t in
  check_bool "skewed gaps" true (s.Trace.mean_inter_contact > 1.2 *. s.Trace.median_inter_contact)

let test_synth_density_profile () =
  (* A profile of 0 suppresses every contact; 1 keeps the process. *)
  let base = { Synth.default_params with Synth.n = 8; horizon = 4000. } in
  let none =
    Synth.generate (Rng.create 2) { base with Synth.density_profile = Some (fun _ -> 0.) }
  in
  check_int "all suppressed" 0 (Trace.num_contacts none);
  let all = Synth.generate (Rng.create 2) { base with Synth.density_profile = Some (fun _ -> 1.) } in
  check_bool "kept" true (Trace.num_contacts all > 0)

let test_synth_ramp_profile () =
  Alcotest.(check (float 1e-9)) "before" 0.25 (Synth.ramp_profile ~t0:10. ~t1:20. ~low:0.25 5.);
  Alcotest.(check (float 1e-9)) "after" 1. (Synth.ramp_profile ~t0:10. ~t1:20. ~low:0.25 25.);
  Alcotest.(check (float 1e-9)) "middle" 0.625 (Synth.ramp_profile ~t0:10. ~t1:20. ~low:0.25 15.)

let test_synth_ramp_raises_late_degree () =
  let profile = Synth.ramp_profile ~t0:5000. ~t1:8000. ~low:0.2 in
  let p = { Synth.default_params with Synth.density_profile = Some profile } in
  let t = Synth.generate (Rng.create 4) p in
  let g = Trace.to_tvg t in
  let early = Tmedb_tvg.Tvg.average_degree_over g ~window:(iv 0. 5000.) in
  let late = Tmedb_tvg.Tvg.average_degree_over g ~window:(iv 9000. 14000.) in
  check_bool "degree ramps up" true (late > 1.5 *. early)

let test_synth_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Synth.generate: need n >= 2") (fun () ->
      ignore (Synth.generate (Rng.create 0) { Synth.default_params with Synth.n = 1 }))

(* ------------------------------------------------------------------ *)
(* Mobility *)

let test_mobility_deterministic () =
  let p = { Mobility.default_params with Mobility.n = 6; horizon = 1000. } in
  let a = Mobility.generate (Rng.create 8) p in
  let b = Mobility.generate (Rng.create 8) p in
  check_bool "same csv" true (Trace.to_csv a = Trace.to_csv b)

let test_mobility_bounds () =
  let p = { Mobility.default_params with Mobility.n = 6; horizon = 1000. } in
  let t = Mobility.generate (Rng.create 8) p in
  List.iter
    (fun c ->
      check_bool "in span" true (Interval.contains (iv 0. 1000.) c.Contact.iv);
      check_bool "distance < range" true (c.Contact.dist < p.Mobility.range))
    (Trace.contacts t)

let test_mobility_positions_in_arena () =
  let p = Mobility.default_params in
  let pos = Mobility.positions_at (Rng.create 2) p 500. in
  check_int "all nodes" p.Mobility.n (Array.length pos);
  Array.iter
    (fun (x, y) ->
      check_bool "x in arena" true (0. <= x && x <= p.Mobility.arena);
      check_bool "y in arena" true (0. <= y && y <= p.Mobility.arena))
    pos

let test_mobility_produces_contacts () =
  (* A dense small arena must produce contacts. *)
  let p = { Mobility.default_params with Mobility.n = 8; arena = 100.; horizon = 2000. } in
  let t = Mobility.generate (Rng.create 12) p in
  check_bool "has contacts" true (Trace.num_contacts t > 0)

let test_mobility_validation () =
  Alcotest.check_raises "range vs arena" (Invalid_argument "Mobility.generate: bad range")
    (fun () ->
      ignore
        (Mobility.generate (Rng.create 0)
           { Mobility.default_params with Mobility.range = 1000. }))

(* Property: synthetic traces always make valid Trace values (round
   trip through CSV preserves counts). *)
let prop_synth_csv_roundtrip =
  QCheck.Test.make ~name:"synthetic trace csv roundtrip" ~count:20
    (QCheck.make QCheck.Gen.small_int) (fun seed ->
      let p = { Synth.default_params with Synth.n = 5; horizon = 2000. } in
      let t = Synth.generate (Rng.create seed) p in
      match Trace.of_csv (Trace.to_csv t) with
      | Error _ -> false
      | Ok t' -> Trace.num_contacts t = Trace.num_contacts t')

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "trace"
    [
      ( "contact",
        [
          tc "normalizes" test_contact_normalizes;
          tc "validation" test_contact_validation;
          tc "ends" test_contact_ends;
        ] );
      ( "trace",
        [
          tc "sorted" test_trace_sorted;
          tc "validation" test_trace_validation;
          tc "restrict" test_trace_restrict;
          tc "to_tvg" test_trace_to_tvg;
          tc "stats" test_trace_stats;
          tc "stats order-invariant" test_trace_stats_order_invariant;
        ] );
      ( "csv",
        [
          tc "roundtrip" test_csv_roundtrip;
          tc "headerless" test_csv_headerless;
          tc "bad line" test_csv_bad_line;
          tc "comments/blanks" test_csv_comments_and_blanks;
          tc "save/load" test_save_load;
          QCheck_alcotest.to_alcotest prop_synth_csv_roundtrip;
        ] );
      ( "synth",
        [
          tc "deterministic" test_synth_deterministic;
          tc "within bounds" test_synth_within_bounds;
          tc "no pair overlap" test_synth_no_pair_overlap;
          tc "heavy tail" test_synth_heavy_tail;
          tc "density profile" test_synth_density_profile;
          tc "ramp profile" test_synth_ramp_profile;
          tc "ramp raises degree" test_synth_ramp_raises_late_degree;
          tc "validation" test_synth_validation;
        ] );
      ( "mobility",
        [
          tc "deterministic" test_mobility_deterministic;
          tc "bounds" test_mobility_bounds;
          tc "positions in arena" test_mobility_positions_in_arena;
          tc "produces contacts" test_mobility_produces_contacts;
          tc "validation" test_mobility_validation;
        ] );
    ]
