(* Tests for tmedb_nlp: numeric differentiation, bisection, projected
   gradient descent and the penalty-method NLP solver. *)

open Tmedb_nlp

let check_bool = Alcotest.(check bool)
let close ?(tol = 1e-6) msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.10g vs %.10g)" msg a b) true
    (Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b)))

(* ------------------------------------------------------------------ *)
(* Numdiff *)

let test_numdiff_quadratic () =
  let f x = (x.(0) *. x.(0)) +. (3. *. x.(1)) in
  let g = Numdiff.gradient f [| 2.; 5. |] in
  close "df/dx0" 4. g.(0);
  close "df/dx1" 3. g.(1)

let test_numdiff_scales_with_magnitude () =
  let f x = x.(0) *. x.(0) in
  let g = Numdiff.gradient f [| 1e6 |] in
  close ~tol:1e-4 "large magnitude" 2e6 g.(0)

let test_numdiff_directional () =
  let f x = x.(0) +. (2. *. x.(1)) in
  close "directional" 5. (Numdiff.directional f [| 0.; 0. |] ~dir:[| 1.; 2. |]);
  close "zero direction" 0. (Numdiff.directional f [| 0.; 0. |] ~dir:[| 0.; 0. |])

(* ------------------------------------------------------------------ *)
(* Bisect *)

let test_bisect_root () =
  (match Bisect.root (fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2. with
  | Some r -> close ~tol:1e-9 "sqrt 2" (sqrt 2.) r
  | None -> Alcotest.fail "expected root");
  check_bool "no bracket" true (Bisect.root (fun x -> x +. 10.) ~lo:0. ~hi:1. = None)

let test_bisect_root_at_end () =
  match Bisect.root (fun x -> x) ~lo:0. ~hi:1. with
  | Some r -> close "root at lo" 0. r
  | None -> Alcotest.fail "expected root"

let test_bisect_least_satisfying () =
  (match Bisect.least_satisfying (fun x -> x >= 3.) ~lo:0. ~hi:10. with
  | Some x -> close ~tol:1e-9 "threshold" 3. x
  | None -> Alcotest.fail "expected threshold");
  check_bool "never satisfied" true (Bisect.least_satisfying (fun _ -> false) ~lo:0. ~hi:1. = None);
  Alcotest.(check (option (float 1e-12))) "immediately satisfied" (Some 0.)
    (Bisect.least_satisfying (fun _ -> true) ~lo:0. ~hi:1.)

(* ------------------------------------------------------------------ *)
(* Projgrad *)

let test_projgrad_unconstrained_quadratic () =
  let f x = ((x.(0) -. 3.) ** 2.) +. ((x.(1) +. 1.) ** 2.) in
  let r =
    Projgrad.minimize ~f ~lower:[| -10.; -10. |] ~upper:[| 10.; 10. |] ~x0:[| 0.; 0. |] ()
  in
  close ~tol:1e-4 "x0 -> 3" 3. r.Projgrad.x.(0);
  close ~tol:1e-4 "x1 -> -1" (-1.) r.Projgrad.x.(1);
  check_bool "converged" true r.Projgrad.converged

let test_projgrad_active_bound () =
  (* Unconstrained optimum at x = 5; box caps at 2. *)
  let f x = (x.(0) -. 5.) ** 2. in
  let r = Projgrad.minimize ~f ~lower:[| 0. |] ~upper:[| 2. |] ~x0:[| 1. |] () in
  close ~tol:1e-6 "clamped" 2. r.Projgrad.x.(0)

let test_projgrad_projects_x0 () =
  let f x = x.(0) ** 2. in
  let r = Projgrad.minimize ~f ~lower:[| 1. |] ~upper:[| 3. |] ~x0:[| 100. |] () in
  check_bool "stays in box" true (1. <= r.Projgrad.x.(0) && r.Projgrad.x.(0) <= 3.);
  close ~tol:1e-6 "lands on lower bound" 1. r.Projgrad.x.(0)

let test_projgrad_analytic_gradient () =
  let f x = (x.(0) ** 2.) +. (x.(1) ** 2.) in
  let grad x = [| 2. *. x.(0); 2. *. x.(1) |] in
  let r =
    Projgrad.minimize ~f ~grad ~lower:[| -5.; -5. |] ~upper:[| 5.; 5. |] ~x0:[| 3.; -4. |] ()
  in
  close ~tol:1e-5 "origin x" 0. r.Projgrad.x.(0);
  close ~tol:1e-5 "origin y" 0. r.Projgrad.x.(1)

let test_projgrad_rosenbrock_descends () =
  (* Not required to reach the optimum, but must strictly improve. *)
  let f x =
    (100. *. ((x.(1) -. (x.(0) ** 2.)) ** 2.)) +. ((1. -. x.(0)) ** 2.)
  in
  let x0 = [| -1.2; 1. |] in
  let r = Projgrad.minimize ~f ~lower:[| -2.; -2. |] ~upper:[| 2.; 2. |] ~x0 () in
  check_bool "improved" true (r.Projgrad.f < f x0)

let test_projgrad_bb_matches_monotone () =
  (* An ill-conditioned quadratic: the spectral step must reach the
     same minimiser as the monotone search, in no more iterations. *)
  let f x = (50. *. ((x.(0) -. 3.) ** 2.)) +. ((x.(1) +. 1.) ** 2.) in
  let grad x = [| 100. *. (x.(0) -. 3.); 2. *. (x.(1) +. 1.) |] in
  let solve bb =
    Projgrad.minimize
      ~options:{ Projgrad.default_options with Projgrad.bb }
      ~f ~grad ~lower:[| -10.; -10. |] ~upper:[| 10.; 10. |] ~x0:[| 0.; 0. |] ()
  in
  let plain = solve false and bb = solve true in
  close ~tol:1e-4 "bb x0 -> 3" 3. bb.Projgrad.x.(0);
  close ~tol:1e-4 "bb x1 -> -1" (-1.) bb.Projgrad.x.(1);
  check_bool "bb converged" true bb.Projgrad.converged;
  check_bool
    (Printf.sprintf "bb no slower (%d vs %d iterations)" bb.Projgrad.iterations
       plain.Projgrad.iterations)
    true
    (bb.Projgrad.iterations <= plain.Projgrad.iterations)

let test_projgrad_bb_respects_bounds () =
  (* Nonmonotone acceptance must still project every iterate. *)
  let f x = (x.(0) -. 5.) ** 2. in
  let r =
    Projgrad.minimize
      ~options:{ Projgrad.default_options with Projgrad.bb = true }
      ~f ~lower:[| 0. |] ~upper:[| 2. |] ~x0:[| 1. |] ()
  in
  check_bool "stays in box" true (0. <= r.Projgrad.x.(0) && r.Projgrad.x.(0) <= 2.);
  close ~tol:1e-6 "clamped" 2. r.Projgrad.x.(0)

let test_projgrad_dimension_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Projgrad.minimize: dimension mismatch")
    (fun () ->
      ignore (Projgrad.minimize ~f:(fun _ -> 0.) ~lower:[| 0. |] ~upper:[| 1.; 2. |] ~x0:[| 0. |] ()))

(* ------------------------------------------------------------------ *)
(* Nlp (penalty solver) *)

let simple_problem =
  (* min x + y  s.t.  x + y >= 1 (i.e. 1 - x - y <= 0), 0 <= x,y <= 1 *)
  {
    Nlp.objective = (fun x -> x.(0) +. x.(1));
    objective_grad = Some (fun _ -> [| 1.; 1. |]);
    constraints =
      [ { Nlp.g = (fun x -> 1. -. x.(0) -. x.(1)); g_grad = Some (fun _ -> [| -1.; -1. |]);
          label = "sum" } ];
    lower = [| 0.; 0. |];
    upper = [| 1.; 1. |];
  }

let test_nlp_linear_with_constraint () =
  let r = Nlp.solve simple_problem ~x0:[| 1.; 1. |] in
  check_bool "feasible" true r.Nlp.feasible;
  close ~tol:1e-3 "objective = 1" 1. r.Nlp.objective

let test_nlp_infeasible_reported () =
  (* x <= 1 but constraint demands x >= 2: impossible. *)
  let p =
    {
      Nlp.objective = (fun x -> x.(0));
      objective_grad = None;
      constraints = [ { Nlp.g = (fun x -> 2. -. x.(0)); g_grad = None; label = "impossible" } ];
      lower = [| 0. |];
      upper = [| 1. |];
    }
  in
  let r = Nlp.solve p ~x0:[| 0.5 |] in
  check_bool "infeasible" false r.Nlp.feasible;
  check_bool "violation positive" true (r.Nlp.max_violation > 0.9)

let test_nlp_already_feasible () =
  let r = Nlp.solve { simple_problem with Nlp.constraints = [] } ~x0:[| 0.7; 0.7 |] in
  check_bool "feasible" true r.Nlp.feasible;
  close ~tol:1e-4 "unconstrained minimum at box corner" 0. r.Nlp.objective

let test_nlp_max_violation () =
  let x = [| 0.; 0. |] in
  close "violation" 1. (Nlp.max_violation simple_problem x);
  close "none when satisfied" 0. (Nlp.max_violation simple_problem [| 1.; 1. |])

let test_nlp_circle_constraint () =
  (* min x+y s.t. x^2 + y^2 >= 1 inside [0,2]^2: optimum on the circle,
     objective = sqrt 2 at the symmetric point... actually minimum of
     x+y subject to being outside the unit circle is 1 (corner (1,0) or
     (0,1)).  Accept anything feasible with objective <= 1.05. *)
  let p =
    {
      Nlp.objective = (fun x -> x.(0) +. x.(1));
      objective_grad = Some (fun _ -> [| 1.; 1. |]);
      constraints =
        [ { Nlp.g = (fun x -> 1. -. ((x.(0) ** 2.) +. (x.(1) ** 2.)));
            g_grad = Some (fun x -> [| -2. *. x.(0); -2. *. x.(1) |]); label = "circle" } ];
      lower = [| 0.; 0. |];
      upper = [| 2.; 2. |];
    }
  in
  let r = Nlp.solve p ~x0:[| 2.; 2. |] in
  check_bool "feasible" true r.Nlp.feasible;
  check_bool "near optimal" true (r.Nlp.objective <= 1.45)

(* Property: penalty solutions are always inside the box. *)
let prop_nlp_in_box =
  QCheck.Test.make ~name:"solutions within the box" ~count:50
    (QCheck.pair (QCheck.float_range 0. 1.) (QCheck.float_range 0. 1.)) (fun (a, b) ->
      let r = Nlp.solve simple_problem ~x0:[| a; b |] in
      Array.for_all (fun x -> -1e-12 <= x && x <= 1. +. 1e-12) r.Nlp.x)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "nlp"
    [
      ( "numdiff",
        [
          tc "quadratic" test_numdiff_quadratic;
          tc "scales" test_numdiff_scales_with_magnitude;
          tc "directional" test_numdiff_directional;
        ] );
      ( "bisect",
        [
          tc "root" test_bisect_root;
          tc "root at end" test_bisect_root_at_end;
          tc "least satisfying" test_bisect_least_satisfying;
        ] );
      ( "projgrad",
        [
          tc "unconstrained quadratic" test_projgrad_unconstrained_quadratic;
          tc "active bound" test_projgrad_active_bound;
          tc "projects x0" test_projgrad_projects_x0;
          tc "analytic gradient" test_projgrad_analytic_gradient;
          tc "rosenbrock descends" test_projgrad_rosenbrock_descends;
          tc "bb matches monotone" test_projgrad_bb_matches_monotone;
          tc "bb respects bounds" test_projgrad_bb_respects_bounds;
          tc "dimension mismatch" test_projgrad_dimension_mismatch;
        ] );
      ( "nlp",
        [
          tc "linear with constraint" test_nlp_linear_with_constraint;
          tc "infeasible reported" test_nlp_infeasible_reported;
          tc "already feasible" test_nlp_already_feasible;
          tc "max violation" test_nlp_max_violation;
          tc "circle constraint" test_nlp_circle_constraint;
          QCheck_alcotest.to_alcotest prop_nlp_in_box;
        ] );
    ]
