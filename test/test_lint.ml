(* Tests for phase 1 of the tmedb-lint static analyzer (lib/lint):
   each parsetree rule R1-R6 fires on a minimal bad fixture, stays
   silent on the good twin, and both suppression mechanisms
   ([@lint.allow] attributes and the lint.allowlist file) silence
   exactly their target rule.  The fixtures are inline sources
   analyzed under a virtual path, which is how rule scoping is
   selected.  The typed phase (R7-R9) is covered by
   test_lint_typed.ml over compiled fixtures. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Plain-stdlib substring test for reporter assertions. *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let findings ?only ?allowlist ~path source =
  match Lint.analyze_source ?only ?allowlist ~path source with
  | Ok fs -> fs
  | Error e -> Alcotest.failf "%s: unexpected parse error: %s" path e

let ids fs = List.map (fun f -> f.Lint.rule.Lint.id) fs

(* [fires rule ~path src] asserts exactly one finding, of [rule]. *)
let fires rule ~path src =
  Alcotest.(check (list string)) (Printf.sprintf "%s fires on %s" rule path) [ rule ]
    (ids (findings ~path src))

let silent ~path src =
  Alcotest.(check (list string)) (Printf.sprintf "silent on %s" path) []
    (ids (findings ~path src))

(* ------------------------------------------------------------------ *)
(* R1 nondet-iteration *)

let bad_fold = "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []"

let test_r1 () =
  fires "nondet-iteration" ~path:"lib/core/fixture.ml" bad_fold;
  fires "nondet-iteration" ~path:"lib/steiner/fixture.ml"
    "let f h = Hashtbl.iter (fun _ v -> print_int v) h";
  fires "nondet-iteration" ~path:"lib/trace/fixture.ml"
    "let f h = Hashtbl.to_seq h";
  (* The good twin: the iteration result is re-sorted. *)
  silent ~path:"lib/core/fixture.ml"
    "let f h = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])";
  silent ~path:"lib/core/fixture.ml"
    "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort Int.compare";
  silent ~path:"lib/core/fixture.ml"
    "let f h = List.sort_uniq Int.compare @@ Hashtbl.fold (fun k _ acc -> k :: acc) h []";
  (* Order-safe accessors never fire. *)
  silent ~path:"lib/core/fixture.ml" "let f h = Hashtbl.length h + Hashtbl.hash h";
  (* Out of scope: only the result-affecting libraries are covered. *)
  silent ~path:"lib/prelude/fixture.ml" bad_fold;
  silent ~path:"lib/obs/fixture.ml" bad_fold;
  silent ~path:"bench/fixture.ml" bad_fold

(* ------------------------------------------------------------------ *)
(* R2 hidden-rng *)

let bad_rng = "let roll () = Random.int 6"

let test_r2 () =
  fires "hidden-rng" ~path:"lib/core/fixture.ml" bad_rng;
  fires "hidden-rng" ~path:"test/fixture.ml" "let s () = Stdlib.Random.self_init ()";
  (* The one sanctioned home for randomness. *)
  silent ~path:"lib/prelude/rng.ml" bad_rng;
  (* The project Rng — and modules merely named Random_something — are fine. *)
  silent ~path:"lib/core/fixture.ml" "let roll g = Rng.int g 6";
  silent ~path:"lib/core/fixture.ml" "let r p = Random_relay.run p"

(* ------------------------------------------------------------------ *)
(* R3 wall-clock *)

let bad_clock = "let t () = Unix.gettimeofday ()"

let test_r3 () =
  fires "wall-clock" ~path:"lib/core/fixture.ml" bad_clock;
  fires "wall-clock" ~path:"lib/prelude/fixture.ml" "let t () = Sys.time ()";
  (* Telemetry and the bench harness are the sanctioned clock readers. *)
  silent ~path:"lib/obs/fixture.ml" bad_clock;
  silent ~path:"bench/fixture.ml" bad_clock;
  (* lib/report is NOT blanket-exempt: only clock.ml carries a repo
     allowlist entry, so the rest of the library stays under R3. *)
  fires "wall-clock" ~path:"lib/report/fixture.ml" bad_clock

(* ------------------------------------------------------------------ *)
(* R4 toplevel-mutable-state *)

let test_r4 () =
  fires "toplevel-mutable-state" ~path:"lib/core/fixture.ml"
    "let table = Hashtbl.create 16";
  fires "toplevel-mutable-state" ~path:"lib/prelude/fixture.ml" "let hits = ref 0";
  fires "toplevel-mutable-state" ~path:"lib/core/fixture.ml"
    "let scratch : float array = Array.make 8 0.";
  (* A mutable-record literal at module level, recognised through the
     file's own type declarations. *)
  fires "toplevel-mutable-state" ~path:"lib/core/fixture.ml"
    "type state = { mutable n : int }\nlet global = { n = 0 }";
  (* Good twins: allocation inside a function is per-call ... *)
  silent ~path:"lib/core/fixture.ml" "let make () = Hashtbl.create 16";
  silent ~path:"lib/core/fixture.ml" "let f () = let h = ref 0 in incr h; !h";
  (* ... an immutable record is not state ... *)
  silent ~path:"lib/core/fixture.ml" "type cfg = { n : int }\nlet default = { n = 0 }";
  (* ... and lib/obs owns its registry state by design. *)
  silent ~path:"lib/obs/fixture.ml" "let table = Hashtbl.create 16";
  (* lib/report is NOT blanket-exempt: only provenance.ml carries a
     repo allowlist entry, so the rest of the library stays under R4. *)
  fires "toplevel-mutable-state" ~path:"lib/report/fixture.ml" "let hits = ref 0"

(* ------------------------------------------------------------------ *)
(* R5 float-polymorphic-compare *)

let test_r5 () =
  fires "float-polymorphic-compare" ~path:"lib/core/fixture.ml" "let f x = x = 0.";
  fires "float-polymorphic-compare" ~path:"lib/nlp/fixture.ml"
    "let f x = min x 1e-9";
  fires "float-polymorphic-compare" ~path:"lib/channel/fixture.ml"
    "let f a b = compare (a +. 1.) b";
  fires "float-polymorphic-compare" ~path:"lib/core/fixture.ml"
    "let f x y = max (float_of_int x) y";
  (* Good twins: Float.-qualified operations, or genuinely-int uses. *)
  silent ~path:"lib/core/fixture.ml" "let f x = Float.equal x 0.";
  silent ~path:"lib/core/fixture.ml" "let f x = Float.min x 1e-9";
  silent ~path:"lib/core/fixture.ml" "let f x = x = 0";
  silent ~path:"lib/core/fixture.ml" "let f a b = min (a : int) b";
  (* Out of scope: the prelude utility layer is not a numeric kernel. *)
  silent ~path:"lib/prelude/fixture.ml" "let f x = x = 0."

(* ------------------------------------------------------------------ *)
(* R6 undocumented-val *)

let test_r6 () =
  fires "undocumented-val" ~path:"lib/core/fixture.mli" "val f : int -> int";
  fires "undocumented-val" ~path:"lib/obs/fixture.mli" "val g : unit -> unit";
  (* Both odoc styles attach to the val in the real parsetree. *)
  silent ~path:"lib/core/fixture.mli" "(** Above. *)\nval f : int -> int";
  silent ~path:"lib/core/fixture.mli" "val f : int -> int\n(** Below. *)";
  (* Vals inside sub-signatures are public API too. *)
  fires "undocumented-val" ~path:"lib/core/fixture.mli"
    "module Sub : sig\n  val f : int -> int\nend";
  (* A floating section heading does not document the val before it —
     the awk script this rule replaces was fooled by exactly this. *)
  fires "undocumented-val" ~path:"lib/core/fixture.mli"
    "val f : int -> int\n\n(** {1 Section} *)\n\nval g : int\n(** Documented. *)";
  (* lib/report joined the documented scope with the run ledger. *)
  fires "undocumented-val" ~path:"lib/report/fixture.mli" "val h : unit -> string";
  (* The planner layer (planner.mli, registry.mli) lives in lib/core,
     so the docs gate covers it: every planner-facing val needs odoc. *)
  fires "undocumented-val" ~path:"lib/core/planner.mli" "val plan : int -> int";
  fires "undocumented-val" ~path:"lib/core/registry.mli" "val find : string -> int";
  (* Out of scope: the docs gate covers lib/core, lib/obs and
     lib/report only. *)
  silent ~path:"lib/steiner/fixture.mli" "val f : int -> int"

(* ------------------------------------------------------------------ *)
(* [@lint.allow] suppression *)

let test_attribute_suppression () =
  (* Expression-level: suppresses exactly its target rule... *)
  silent ~path:"lib/core/fixture.ml"
    "let f h = (Hashtbl.fold (fun k _ acc -> k :: acc) h []) [@lint.allow \
     \"nondet-iteration\"]";
  (* ... and not others: a mismatched allow leaves the finding alive. *)
  fires "nondet-iteration" ~path:"lib/core/fixture.ml"
    "let f h = (Hashtbl.fold (fun k _ acc -> k :: acc) h []) [@lint.allow \
     \"hidden-rng\"]";
  (* Binding-level [@@lint.allow]. *)
  silent ~path:"lib/core/fixture.ml"
    "let table = Hashtbl.create 16 [@@lint.allow \"toplevel-mutable-state\"]";
  (* File-level [@@@lint.allow]. *)
  silent ~path:"lib/core/fixture.ml"
    "[@@@lint.allow \"wall-clock\"]\nlet t () = Unix.gettimeofday ()";
  (* Comma-separated rule lists. *)
  silent ~path:"lib/core/fixture.ml"
    "[@@@lint.allow \"wall-clock, hidden-rng\"]\nlet t () = Unix.gettimeofday () \
     +. float_of_int (Random.int 3)";
  (* Signature items. *)
  silent ~path:"lib/core/fixture.mli"
    "val f : int -> int [@@lint.allow \"undocumented-val\"]";
  (* A suppressed rule does not shadow a different live one: the
     wall-clock allow leaves the RNG finding in place. *)
  Alcotest.(check (list string))
    "unrelated rule still fires" [ "hidden-rng" ]
    (ids
       (findings ~path:"lib/core/fixture.ml"
          "[@@@lint.allow \"wall-clock\"]\nlet f () = Random.int 3"))

(* ------------------------------------------------------------------ *)
(* lint.allowlist *)

let parse_allowlist text =
  match Lint.parse_allowlist ~source_name:"test.allowlist" text with
  | Ok entries -> entries
  | Error e -> Alcotest.failf "allowlist did not parse: %s" e

let test_allowlist () =
  let allowlist =
    parse_allowlist
      "# comment\n\
       lib/core/bad.ml nondet-iteration\n\
       lib/trace *   # whole directory, every rule\n"
  in
  check_int "entries parsed" 2 (List.length allowlist);
  (* Exact file + exact rule. *)
  check_int "suppressed for the listed file" 0
    (List.length (findings ~allowlist ~path:"lib/core/bad.ml" bad_fold));
  (* Only the listed rule. *)
  Alcotest.(check (list string))
    "other rules still fire in the listed file" [ "hidden-rng" ]
    (ids (findings ~allowlist ~path:"lib/core/bad.ml" bad_rng));
  (* Other files unaffected. *)
  check_int "other files still fire" 1
    (List.length (findings ~allowlist ~path:"lib/core/other.ml" bad_fold));
  (* Directory prefix with the wildcard rule. *)
  check_int "directory wildcard" 0
    (List.length (findings ~allowlist ~path:"lib/trace/anything.ml" bad_fold));
  (* Malformed input and unknown rules are hard errors, so stale
     entries cannot linger. *)
  check_bool "unknown rule rejected" true
    (Result.is_error (Lint.parse_allowlist ~source_name:"t" "lib/core/x.ml no-such-rule"));
  check_bool "malformed line rejected" true
    (Result.is_error (Lint.parse_allowlist ~source_name:"t" "just-one-field"))

(* The repo allowlist exempts exactly two lib/report file × rule pairs
   (clock.ml may read the wall clock, provenance.ml may hold its sink
   state); prove with fire/silent twins that nothing leaks to sibling
   files or across rules. *)
let test_report_allowlist_scope () =
  let allowlist =
    parse_allowlist
      "lib/report/clock.ml wall-clock\nlib/report/provenance.ml toplevel-mutable-state\n"
  in
  (* Silent twins: the two sanctioned pairs. *)
  check_int "clock.ml may read the wall clock" 0
    (List.length (findings ~allowlist ~path:"lib/report/clock.ml" bad_clock));
  check_int "provenance.ml may hold sink state" 0
    (List.length (findings ~allowlist ~path:"lib/report/provenance.ml" "let sink = ref []"));
  (* Fire twins: the exemptions do not leak to sibling files... *)
  Alcotest.(check (list string))
    "ledger.ml still under R3" [ "wall-clock" ]
    (ids (findings ~allowlist ~path:"lib/report/ledger.ml" bad_clock));
  Alcotest.(check (list string))
    "diff.ml still under R4" [ "toplevel-mutable-state" ]
    (ids (findings ~allowlist ~path:"lib/report/diff.ml" "let cache = Hashtbl.create 8"));
  (* ... nor across rules within the exempted files. *)
  Alcotest.(check (list string))
    "clock.ml still under R4" [ "toplevel-mutable-state" ]
    (ids (findings ~allowlist ~path:"lib/report/clock.ml" "let cache = ref 0"));
  Alcotest.(check (list string))
    "provenance.ml still under R3" [ "wall-clock" ]
    (ids (findings ~allowlist ~path:"lib/report/provenance.ml" bad_clock))

(* ------------------------------------------------------------------ *)
(* --only, error reporting, reporters *)

let test_only_filter () =
  let both = "let f h = Hashtbl.iter (fun _ _ -> ignore (Random.int 2)) h" in
  Alcotest.(check (list string))
    "unfiltered reports both" [ "hidden-rng"; "nondet-iteration" ]
    (List.sort String.compare (ids (findings ~path:"lib/core/fixture.ml" both)));
  Alcotest.(check (list string))
    "--only restricts" [ "hidden-rng" ]
    (ids (findings ~only:[ "hidden-rng" ] ~path:"lib/core/fixture.ml" both))

let test_syntax_error () =
  check_bool "syntax errors are Error, not findings" true
    (Result.is_error (Lint.analyze_source ~path:"lib/core/fixture.ml" "let let let"))

let test_reporters () =
  let fs = findings ~path:"lib/core/fixture.ml" bad_fold in
  let text = Format.asprintf "%a" Lint.report_text fs in
  check_bool "text reporter names file and rule" true
    (contains ~affix:"lib/core/fixture.ml:1:" text
    && contains ~affix:"nondet-iteration" text);
  let json = Format.asprintf "%a" Lint.report_json fs in
  check_bool "json reporter carries count" true
    (contains ~affix:"\"count\": 1" json);
  check_bool "empty json still well-formed" true
    (contains ~affix:"\"count\": 0"
       (Format.asprintf "%a" Lint.report_json []))

let test_stale_entries () =
  let allowlist =
    parse_allowlist "lib/core/gone.ml nondet-iteration\nlib/trace *\n"
  in
  (* Probe injected so the test owns the filesystem facts. *)
  let exists p = p = "lib/trace" in
  let stale = Lint.stale_entries ~exists allowlist in
  check_int "only the dangling path is stale" 1 (List.length stale);
  Alcotest.(check string)
    "the stale entry is the dangling one" "lib/core/gone.ml"
    (List.hd stale).Lint.pattern;
  check_int "nothing stale when everything exists" 0
    (List.length (Lint.stale_entries ~exists:(fun _ -> true) allowlist));
  (* The repo's own allowlist must never rot.  Tests run from the
     build sandbox, so walk up to the checkout that holds it and
     resolve entry paths against that root. *)
  let rec find_up dir =
    if Sys.file_exists (Filename.concat dir "lint.allowlist") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_up parent
  in
  match find_up (Sys.getcwd ()) with
  | None -> Alcotest.fail "repo lint.allowlist not found above the test cwd"
  | Some root -> (
      match Lint.load_allowlist (Filename.concat root "lint.allowlist") with
      | Error e -> Alcotest.failf "repo allowlist unreadable: %s" e
      | Ok entries ->
          check_int "repo allowlist has no stale entries" 0
            (List.length
               (Lint.stale_entries
                  ~exists:(fun p -> Sys.file_exists (Filename.concat root p))
                  entries)))

let test_sarif_reporter () =
  let fs = findings ~path:"lib/core/fixture.ml" bad_fold in
  let sarif = Format.asprintf "%a" Lint.report_sarif fs in
  check_bool "sarif version present" true
    (contains ~affix:"\"version\": \"2.1.0\"" sarif);
  check_bool "result carries the rule code" true
    (contains ~affix:"\"ruleId\": \"R1\"" sarif);
  check_bool "result points at the file" true
    (contains ~affix:"lib/core/fixture.ml" sarif);
  check_bool "driver lists the typed rules too" true
    (contains ~affix:"pool-task-purity" sarif);
  check_bool "empty run still well-formed" true
    (contains ~affix:"\"results\": []"
       (Format.asprintf "%a" Lint.report_sarif []))

let test_rules_catalogue () =
  check_int "nine rules" 9 (List.length Lint.rules);
  check_int "three typed rules" 3 (List.length Lint.typed_rules);
  List.iter
    (fun r ->
      check_bool
        (Printf.sprintf "%s is marked typed" r.Lint.id)
        true (Lint.is_typed r))
    Lint.typed_rules;
  check_bool "phase-1 rules are not typed" false
    (List.exists Lint.is_typed
       (List.filter (fun r -> not (List.mem r Lint.typed_rules)) Lint.rules));
  List.iter
    (fun r ->
      check_bool
        (Printf.sprintf "%s resolvable by id" r.Lint.id)
        true
        (Lint.find_rule r.Lint.id = Some r))
    Lint.rules;
  check_bool "unknown id is None" true (Lint.find_rule "bogus" = None)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "lint"
    [
      ( "rules",
        [
          tc "R1 nondet-iteration" test_r1;
          tc "R2 hidden-rng" test_r2;
          tc "R3 wall-clock" test_r3;
          tc "R4 toplevel-mutable-state" test_r4;
          tc "R5 float-polymorphic-compare" test_r5;
          tc "R6 undocumented-val" test_r6;
        ] );
      ( "suppression",
        [
          tc "[@lint.allow] attributes" test_attribute_suppression;
          tc "lint.allowlist" test_allowlist;
          tc "lib/report allowlist scope exactness" test_report_allowlist_scope;
        ] );
      ( "engine",
        [
          tc "--only filter" test_only_filter;
          tc "syntax error handling" test_syntax_error;
          tc "reporters" test_reporters;
          tc "sarif reporter" test_sarif_reporter;
          tc "stale allowlist entries" test_stale_entries;
          tc "rules catalogue" test_rules_catalogue;
        ] );
    ]
