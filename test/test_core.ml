(* Tests for the tmedb core library: schedules, TMEDB instances,
   feasibility (conditions i-iv), the auxiliary-graph reduction,
   EEDCB / GREED / RAND, the FR pipeline with NLP energy allocation,
   the Monte-Carlo simulator and metrics.

   Includes the constructive checks of the paper's theory:
   - the Set-Cover gadget of Theorem 4.1 with known optima,
   - Theorem 5.2 (DTS equivalence): perturbing a feasible schedule
     within its DTS intervals preserves feasibility, and ET-law
     normalisation maps it back,
   - Property 6.1 / Proposition 6.1 via the DCS-based algorithms. *)

open Tmedb_prelude
open Tmedb_channel
open Tmedb_tveg
open Tmedb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let close ?(tol = 1e-9) msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.10g vs %.10g)" msg a b) true
    (Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b)))

let iv lo hi = Interval.make ~lo ~hi
let link lo hi dist = { Tveg.iv = iv lo hi; dist }
let phy = Phy.default
let tx relay time cost = { Schedule.relay; time; cost }

(* Planner shorthands: every algorithm goes through plan + Ctx now. *)
let run_eedcb ?level p = Eedcb.plan (Planner.Ctx.make ?steiner_level:level ()) p
let run_greedy ?cap_per_node p = Greedy.plan (Planner.Ctx.make ?cap_per_node ()) p
let run_rand ~rng p = Random_relay.plan (Planner.Ctx.make ~rng ()) p
let run_fr ?rng backbone p = Fr.plan_with backbone (Planner.Ctx.make ?rng ()) p
let run_bip p = Static_bip.plan (Planner.Ctx.default ()) p
let fr_alloc o = Option.get (Planner.Outcome.allocation o)
let fr_backbone o = Option.get (Planner.Outcome.backbone o)

(* The quickstart topology: known optimal normalized energy 1269. *)
let quickstart_graph () =
  Tveg.create ~n:5 ~span:(iv 0. 100.) ~tau:0.
    [
      (0, 1, link 0. 30. 10.);
      (0, 2, link 0. 40. 30.);
      (1, 3, link 20. 60. 15.);
      (2, 4, link 35. 70. 12.);
      (1, 4, link 50. 75. 40.);
    ]

let quickstart_problem ?(channel = `Static) ?(deadline = 80.) () =
  Problem.make ~graph:(quickstart_graph ()) ~phy ~channel ~source:0 ~deadline ()

let w_for d = Phy.min_cost phy ~dist:d

(* Random reachable-ish instances shared by several property tests. *)
let random_instance seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 4 in
  let entries = ref [] in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      for _ = 0 to Rng.int rng 2 do
        let lo = Rng.float rng 80. in
        let hi = Float.min 100. (lo +. 5. +. Rng.float rng 20.) in
        if hi > lo then begin
          let d = 5. +. Rng.float rng 45. in
          entries := (i, j, link lo hi d) :: !entries
        end
      done
    done
  done;
  let g = Tveg.create ~n ~span:(iv 0. 100.) ~tau:0. !entries in
  Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:100. ()

(* ------------------------------------------------------------------ *)
(* Schedule *)

let test_schedule_sorted_and_cost () =
  let s = Schedule.of_transmissions [ tx 1 5. 2.; tx 0 1. 1.; tx 2 3. 4. ] in
  Alcotest.(check (list (float 0.))) "times sorted" [ 1.; 3.; 5. ] (Schedule.times s);
  close "total" 7. (Schedule.total_cost s);
  check_int "count" 3 (Schedule.num_transmissions s);
  Alcotest.(check (option (float 0.))) "latest" (Some 5.) (Schedule.latest_time s)

let test_schedule_validation () =
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Schedule.of_transmissions: negative cost") (fun () ->
      ignore (Schedule.of_transmissions [ tx 0 1. (-1.) ]))

let test_schedule_map_costs () =
  let s = Schedule.of_transmissions [ tx 0 1. 1.; tx 1 2. 2. ] in
  let s' = Schedule.map_costs s (fun k _ -> float_of_int (10 * (k + 1))) in
  Alcotest.(check (list (float 0.))) "rewritten" [ 10.; 20. ] (Schedule.costs s')

let test_schedule_empty () =
  close "empty cost" 0. (Schedule.total_cost Schedule.empty);
  Alcotest.(check (option (float 0.))) "no latest" None (Schedule.latest_time Schedule.empty)

let test_schedule_equal () =
  let a = Schedule.of_transmissions [ tx 0 1. 1.; tx 1 2. 2. ] in
  let b = Schedule.of_transmissions [ tx 1 2. 2.; tx 0 1. 1. ] in
  check_bool "order independent" true (Schedule.equal a b)

let test_schedule_csv_roundtrip () =
  let s = Schedule.of_transmissions [ tx 0 0.1 1.513e-9; tx 3 17.25 4.2e-10 ] in
  (match Schedule.of_csv (Schedule.to_csv s) with
  | Ok s' -> check_bool "roundtrip" true (Schedule.equal s s')
  | Error e -> Alcotest.fail e);
  (match Schedule.of_csv "0,1.5,notanumber\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error");
  match Schedule.of_csv "# only a comment\n\n" with
  | Ok s' -> check_int "empty ok" 0 (Schedule.num_transmissions s')
  | Error e -> Alcotest.fail e

let test_schedule_save_load () =
  let s = Schedule.of_transmissions [ tx 0 0. (w_for 30.); tx 1 20. (w_for 15.) ] in
  let path = Filename.temp_file "tmedb" ".sched" in
  Schedule.save s ~path;
  (match Schedule.load ~path with
  | Ok s' -> check_bool "same" true (Schedule.equal s s')
  | Error e -> Alcotest.fail e);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Problem *)

let test_problem_validation () =
  Alcotest.check_raises "bad source" (Invalid_argument "Problem.make: source out of range")
    (fun () ->
      ignore (Problem.make ~graph:(quickstart_graph ()) ~phy ~channel:`Static ~source:9 ~deadline:50. ()));
  Alcotest.check_raises "bad deadline"
    (Invalid_argument "Problem.make: deadline outside the graph span") (fun () ->
      ignore
        (Problem.make ~graph:(quickstart_graph ()) ~phy ~channel:`Static ~source:0 ~deadline:101. ()))

let test_problem_reachability () =
  check_bool "reachable at 80" true (Problem.is_reachable (quickstart_problem ()));
  (* By t=30 node 4 cannot have the packet (2--4 opens at 35). *)
  check_bool "unreachable at 30" false (Problem.is_reachable (quickstart_problem ~deadline:30. ()));
  close "completion bound" 35. (Problem.completion_lower_bound (quickstart_problem ()))

let test_gadget_structure () =
  let instance, source_cost, element_cost =
    Problem.set_cover_gadget ~universe:3 ~sets:[ [ 0; 1 ]; [ 1; 2 ] ] ()
  in
  check_int "nodes" 6 (Problem.n instance);
  check_bool "reachable" true (Problem.is_reachable instance);
  check_bool "costs ordered" true (source_cost < element_cost)

let test_gadget_validation () =
  Alcotest.check_raises "uncovered universe"
    (Invalid_argument "Problem.set_cover_gadget: universe not covered by the union of sets")
    (fun () -> ignore (Problem.set_cover_gadget ~universe:3 ~sets:[ [ 0; 1 ] ] ()))

(* Theorem 4.1 gadget, k* = 1: one set covers the universe. *)
let test_gadget_optimal_single_set () =
  let instance, source_cost, element_cost =
    Problem.set_cover_gadget ~universe:3 ~sets:[ [ 0; 1 ]; [ 0; 1; 2 ]; [ 2 ] ] ()
  in
  let r = run_eedcb instance in
  check_bool "feasible" true r.Planner.Outcome.report.Feasibility.feasible;
  close ~tol:1e-9 "cost = source + 1 element set" (source_cost +. element_cost)
    (Schedule.total_cost r.Planner.Outcome.schedule)

(* k* = 2: disjoint halves. *)
let test_gadget_optimal_two_sets () =
  let instance, source_cost, element_cost =
    Problem.set_cover_gadget ~universe:4 ~sets:[ [ 0; 1 ]; [ 2; 3 ]; [ 1; 2 ] ] ()
  in
  let r = run_eedcb instance in
  check_bool "feasible" true r.Planner.Outcome.report.Feasibility.feasible;
  close ~tol:1e-9 "cost = source + 2 element sets"
    (source_cost +. (2. *. element_cost))
    (Schedule.total_cost r.Planner.Outcome.schedule)

(* ------------------------------------------------------------------ *)
(* Feasibility *)

let optimal_quickstart_schedule () =
  Schedule.of_transmissions [ tx 0 0. (w_for 30.); tx 1 20. (w_for 15.); tx 2 35. (w_for 12.) ]

let test_feasibility_valid_schedule () =
  let r = Feasibility.check (quickstart_problem ()) (optimal_quickstart_schedule ()) in
  check_bool "feasible" true r.Feasibility.feasible;
  Alcotest.(check (list int)) "nobody uninformed" [] r.Feasibility.uninformed;
  close "delivery 1" 1. (Feasibility.delivery_ratio r);
  (match r.Feasibility.informed_time.(4) with
  | Some t -> close "node 4 informed at 35" 35. t
  | None -> Alcotest.fail "node 4 must be informed")

let test_feasibility_uninformed_relay () =
  (* Node 1 relays before anyone told it anything. *)
  let s = Schedule.of_transmissions [ tx 1 20. (w_for 15.) ] in
  let r = Feasibility.check (quickstart_problem ()) s in
  check_bool "relay flag" false r.Feasibility.relays_informed;
  check_bool "infeasible" false r.Feasibility.feasible

let test_feasibility_missing_node () =
  (* Without 2 -> 4, node 4 stays uninformed. *)
  let s = Schedule.of_transmissions [ tx 0 0. (w_for 30.); tx 1 20. (w_for 15.) ] in
  let r = Feasibility.check (quickstart_problem ()) s in
  check_bool "not all informed" false r.Feasibility.all_informed;
  Alcotest.(check (list int)) "node 4 missing" [ 4 ] r.Feasibility.uninformed

let test_feasibility_late_transmission () =
  let s = Schedule.add (optimal_quickstart_schedule ()) (tx 1 90. (w_for 15.)) in
  let r = Feasibility.check (quickstart_problem ()) s in
  check_bool "deadline flag" false r.Feasibility.within_deadline

let test_feasibility_budget () =
  let p = Problem.make ~graph:(quickstart_graph ()) ~phy ~channel:`Static ~source:0 ~deadline:80.
      ~budget:(w_for 30.) () in
  let r = Feasibility.check p (optimal_quickstart_schedule ()) in
  check_bool "over budget" false r.Feasibility.within_budget;
  check_bool "infeasible" false r.Feasibility.feasible

let test_feasibility_cost_out_of_range () =
  let p = quickstart_problem () in
  let s = Schedule.add (optimal_quickstart_schedule ()) (tx 0 1. (2. *. phy.Phy.w_max)) in
  let r = Feasibility.check p s in
  check_bool "cost range flag" false r.Feasibility.costs_in_range

let test_feasibility_insufficient_power () =
  (* Source transmits with only enough power for 10 m: node 2 (30 m)
     misses it. *)
  let s = Schedule.of_transmissions [ tx 0 0. (w_for 10.) ] in
  let r = Feasibility.check (quickstart_problem ()) s in
  check_bool "node 1 informed" true (r.Feasibility.informed_time.(1) <> None);
  check_bool "node 2 not informed" true (r.Feasibility.informed_time.(2) = None)

let test_feasibility_same_instant_chain () =
  (* tau = 0: 0 -> 1 and 1 -> 3 at the same instant must chain
     regardless of relay ids. *)
  let g = Tveg.create ~n:3 ~span:(iv 0. 10.) ~tau:0.
      [ (0, 1, link 0. 10. 10.); (1, 2, link 0. 10. 10.) ] in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:10. () in
  let s = Schedule.of_transmissions [ tx 0 5. (w_for 10.); tx 1 5. (w_for 10.) ] in
  let r = Feasibility.check p s in
  check_bool "chained" true r.Feasibility.feasible

let test_feasibility_fading_accumulates () =
  (* Rayleigh: repeated transmissions multiply failure probabilities
     (Eq. 6); enough repeats push p below eps. *)
  let g = Tveg.create ~n:2 ~span:(iv 0. 10.) ~tau:0. [ (0, 1, link 0. 10. 10.) ] in
  let p = Problem.make ~graph:g ~phy ~channel:`Rayleigh ~source:0 ~deadline:10. () in
  let beta = Phy.beta phy ~dist:10. in
  (* One shot at w = beta fails with prob 1 - e^-1 ~ 0.63 > eps. *)
  let one = Schedule.of_transmissions [ tx 0 1. beta ] in
  let r1 = Feasibility.check p one in
  check_bool "single shot insufficient" false r1.Feasibility.all_informed;
  (* Eleven shots: (1 - e^-1)^11 ~ 0.0065 < 0.01 (ten gives 0.0102,
     just above eps). *)
  let eleven =
    Schedule.of_transmissions (List.init 11 (fun k -> tx 0 (float_of_int k *. 0.5) beta))
  in
  let r11 = Feasibility.check p eleven in
  check_bool "eleven shots inform" true r11.Feasibility.all_informed

(* Theorem 5.2, constructive direction: shifting a feasible schedule's
   times within their DTS/status intervals keeps it feasible, and the
   ET-law normalisation yields an equal-cost feasible schedule. *)
let test_dts_equivalence_perturbation () =
  let p = quickstart_problem () in
  let base = optimal_quickstart_schedule () in
  check_bool "base feasible" true (Feasibility.check p base).Feasibility.feasible;
  (* Perturb each transmission forward by 2 s: still inside the same
     contact and after each relay's informed time. *)
  let shifted =
    Schedule.of_transmissions
      (List.map
         (fun t -> { t with Schedule.time = t.Schedule.time +. 2. })
         (Schedule.transmissions base))
  in
  let r = Feasibility.check p shifted in
  check_bool "shifted feasible" true r.Feasibility.feasible;
  (* Normalise back with the ET law. *)
  let dts = Problem.dts p in
  let informed_time v = r.Feasibility.informed_time.(v) in
  let normalized = Schedule.normalize_et shifted dts ~informed_time in
  close "cost unchanged" (Schedule.total_cost shifted) (Schedule.total_cost normalized);
  check_bool "normalized feasible" true (Feasibility.check p normalized).Feasibility.feasible;
  (* Every normalised time is a DTS point of its relay. *)
  List.iter
    (fun t ->
      check_bool "time on DTS" true
        (Dts.index_of_point dts t.Schedule.relay t.Schedule.time <> None))
    (Schedule.transmissions normalized)

(* ------------------------------------------------------------------ *)
(* Aux graph *)

let test_aux_graph_shape () =
  let p = quickstart_problem () in
  let dts = Problem.dts p in
  let aux = Aux_graph.build p dts in
  check_int "wait vertices = DTS points" (Dts.total_points dts) (Aux_graph.num_wait_vertices aux);
  check_bool "has level vertices" true (Aux_graph.num_level_vertices aux > 0);
  check_int "terminals = n - 1" (Problem.n p - 1) (List.length aux.Aux_graph.terminals);
  (match aux.Aux_graph.vertex.(aux.Aux_graph.source_vertex) with
  | Aux_graph.Wait { node; point_idx; _ } ->
      check_int "source node" 0 node;
      check_int "first point" 0 point_idx
  | Aux_graph.Level _ -> Alcotest.fail "source must be a wait vertex")

let test_aux_graph_extract_roundtrip () =
  (* Any Steiner tree over the aux graph extracts to a feasible
     schedule whose cost is at most the tree cost (chains collapse to
     the deepest level). *)
  let p = quickstart_problem () in
  let dts = Problem.dts p in
  let aux = Aux_graph.build p dts in
  let o =
    Tmedb_steiner.Dst.solve ~level:2 aux.Aux_graph.graph ~root:aux.Aux_graph.source_vertex
      ~terminals:aux.Aux_graph.terminals
  in
  check_bool "all terminals covered" true (o.Tmedb_steiner.Dst.uncovered = []);
  let schedule = Aux_graph.extract_schedule aux o.Tmedb_steiner.Dst.tree in
  check_bool "extracted feasible" true (Feasibility.check p schedule).Feasibility.feasible;
  check_bool "schedule cost <= tree cost" true
    (Schedule.total_cost schedule <= o.Tmedb_steiner.Dst.tree.Tmedb_steiner.Dst.cost +. 1e-18)

let test_aux_graph_deadline_blocks_late_levels () =
  (* With tau > 0, a transmission can only start if it finishes by the
     deadline: points beyond deadline - tau get no level vertices. *)
  let g = Tveg.create ~n:2 ~span:(iv 0. 10.) ~tau:2. [ (0, 1, link 0. 10. 10.) ] in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:9. () in
  let dts = Problem.dts p in
  let aux = Aux_graph.build p dts in
  Array.iter
    (fun v ->
      match v with
      | Aux_graph.Level { time; _ } -> check_bool "level fits deadline" true (time +. 2. <= 9.)
      | Aux_graph.Wait _ -> ())
    aux.Aux_graph.vertex

(* The lazy auxiliary graph must be indistinguishable from the eager
   one: same vertex universe and ids, and — because the traversals
   break priority ties by operation sequence — the *same successor
   enumeration order* in both directions, edge for edge. *)
let check_lazy_matches_eager p =
  let dts = Problem.dts p in
  let aux = Aux_graph.build p dts in
  let lazy_aux = Aux_graph.Lazy.create p dts in
  let nv = Tmedb_steiner.Digraph.n aux.Aux_graph.graph in
  check_int "vertex universe" nv (Aux_graph.Lazy.num_vertices lazy_aux);
  check_int "wait vertices" (Aux_graph.num_wait_vertices aux)
    (Aux_graph.Lazy.num_wait_vertices lazy_aux);
  check_int "source vertex" aux.Aux_graph.source_vertex
    (Aux_graph.Lazy.source_vertex lazy_aux);
  Alcotest.(check (list int))
    "terminals" aux.Aux_graph.terminals
    (Aux_graph.Lazy.terminals lazy_aux);
  let succs iter u =
    let acc = ref [] in
    iter u (fun v w -> acc := (v, w) :: !acc);
    List.rev !acc
  in
  let pair = Alcotest.(list (pair int (float 0.))) in
  let fwd = Aux_graph.Lazy.view lazy_aux in
  let rev = Aux_graph.Lazy.rev_view lazy_aux in
  let rev_eager = Tmedb_steiner.Digraph.reverse aux.Aux_graph.graph in
  for u = 0 to nv - 1 do
    Alcotest.check pair
      (Printf.sprintf "fwd succ of %d" u)
      (succs (Tmedb_steiner.Digraph.iter_succ aux.Aux_graph.graph) u)
      (succs fwd.Tmedb_steiner.Digraph.iter_succ u);
    Alcotest.check pair
      (Printf.sprintf "rev succ of %d" u)
      (succs (Tmedb_steiner.Digraph.iter_succ rev_eager) u)
      (succs rev.Tmedb_steiner.Digraph.iter_succ u);
    let same =
      match (aux.Aux_graph.vertex.(u), Aux_graph.Lazy.describe lazy_aux u) with
      | Aux_graph.Wait a, Aux_graph.Wait b ->
          a.node = b.node && a.point_idx = b.point_idx && Float.equal a.time b.time
      | Aux_graph.Level a, Aux_graph.Level b ->
          a.node = b.node && a.point_idx = b.point_idx && Float.equal a.time b.time
          && a.level_idx = b.level_idx
          && Float.equal a.cum_cost b.cum_cost
      | Aux_graph.Wait _, Aux_graph.Level _ | Aux_graph.Level _, Aux_graph.Wait _ -> false
    in
    check_bool (Printf.sprintf "describe %d" u) true same
  done;
  (* Full enumeration touched everything: the counters saturate. *)
  check_int "all nodes materialized" nv (Aux_graph.Lazy.nodes_materialized lazy_aux);
  check_int "edge universe counted twice"
    (2 * Tmedb_steiner.Digraph.m aux.Aux_graph.graph)
    (Aux_graph.Lazy.edges_materialized lazy_aux)

let test_lazy_aux_equivalence () =
  check_lazy_matches_eager (quickstart_problem ());
  check_lazy_matches_eager (quickstart_problem ~deadline:40. ());
  check_lazy_matches_eager (quickstart_problem ~channel:`Rayleigh ());
  let g =
    Tveg.create ~n:3 ~span:(iv 0. 20.) ~tau:2.
      [ (0, 1, link 0. 12. 10.); (1, 2, link 5. 20. 25.); (0, 2, link 14. 20. 60.) ]
  in
  check_lazy_matches_eager
    (Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:18. ())

let test_lazy_aux_frontier_is_partial () =
  (* A targeted Dijkstra on the lazy view must not touch the whole
     universe (that is the whole point). *)
  let p = quickstart_problem () in
  let dts = Problem.dts p in
  let lazy_aux = Aux_graph.Lazy.create p dts in
  let fwd = Aux_graph.Lazy.view lazy_aux in
  let src = Aux_graph.Lazy.source_vertex lazy_aux in
  (match Aux_graph.Lazy.terminals lazy_aux with
  | [] -> Alcotest.fail "expected terminals"
  | t :: _ ->
      ignore (Tmedb_steiner.Dijkstra.run_view ~targets:[ t ] fwd ~src));
  let touched = Aux_graph.Lazy.nodes_materialized lazy_aux in
  check_bool "some frontier" true (touched > 0);
  check_bool "not the whole universe" true
    (touched < Aux_graph.Lazy.num_vertices lazy_aux)

(* ------------------------------------------------------------------ *)
(* EEDCB *)

let test_eedcb_quickstart_optimal () =
  let p = quickstart_problem () in
  let r = run_eedcb p in
  check_bool "feasible" true r.Planner.Outcome.report.Feasibility.feasible;
  close ~tol:1e-6 "known optimum 1269" 1269. (Metrics.normalized_energy p r.Planner.Outcome.schedule);
  Alcotest.(check (list int)) "everyone reached" [] r.Planner.Outcome.unreached

let test_eedcb_respects_deadline () =
  (* Deadline 40: 2--4 [35,70) still allows completion; the returned
     schedule must finish by 40. *)
  let p = quickstart_problem ~deadline:40. () in
  let r = run_eedcb p in
  check_bool "feasible" true r.Planner.Outcome.report.Feasibility.feasible;
  (match Schedule.latest_time r.Planner.Outcome.schedule with
  | Some t -> check_bool "within deadline" true (t <= 40.)
  | None -> Alcotest.fail "expected transmissions")

let test_eedcb_unreachable_reported () =
  let p = quickstart_problem ~deadline:30. () in
  let r = run_eedcb p in
  check_bool "node 4 unreached" true (List.mem 4 r.Planner.Outcome.unreached)

let test_eedcb_level1_works () =
  let p = quickstart_problem () in
  let r = run_eedcb ~level:1 p in
  check_bool "level 1 feasible" true r.Planner.Outcome.report.Feasibility.feasible

let test_eedcb_positive_tau () =
  (* Same topology with tau = 2: every hop takes 2 s, transmissions
     must fit inside contacts and finish by the deadline. *)
  let graph =
    Tveg.create ~n:5 ~span:(iv 0. 100.) ~tau:2.
      [
        (0, 1, link 0. 30. 10.);
        (0, 2, link 0. 40. 30.);
        (1, 3, link 20. 60. 15.);
        (2, 4, link 35. 70. 12.);
        (1, 4, link 50. 75. 40.);
      ]
  in
  let p = Problem.make ~graph ~phy ~channel:`Static ~source:0 ~deadline:80. () in
  let r = run_eedcb p in
  check_bool "tau>0 feasible" true r.Planner.Outcome.report.Feasibility.feasible;
  (* Each scheduled transmission completes inside its contact. *)
  List.iter
    (fun t ->
      let covered =
        List.exists
          (fun j -> Tveg.rho_tau graph t.Schedule.relay j t.Schedule.time)
          (List.filter (fun j -> j <> t.Schedule.relay) [ 0; 1; 2; 3; 4 ])
      in
      check_bool "transmission fits a contact" true covered)
    (Schedule.transmissions r.Planner.Outcome.schedule)

let test_eedcb_tau_too_large () =
  (* tau = 50 exceeds every contact: nothing can ever be transmitted. *)
  let graph = Tveg.create ~n:2 ~span:(iv 0. 100.) ~tau:50. [ (0, 1, link 0. 30. 10.) ] in
  let p = Problem.make ~graph ~phy ~channel:`Static ~source:0 ~deadline:100. () in
  let r = run_eedcb p in
  check_bool "node 1 unreached" true (List.mem 1 r.Planner.Outcome.unreached)

let test_eedcb_schedule_on_dts () =
  (* Proposition 6.1 + Theorem 5.2: EEDCB's schedule lives on the DTS
     and uses DCS costs. *)
  let p = quickstart_problem () in
  let dts = Problem.dts p in
  let r = run_eedcb p in
  List.iter
    (fun t ->
      check_bool "time on DTS" true (Dts.index_of_point dts t.Schedule.relay t.Schedule.time <> None);
      let levels = Dcs.at (quickstart_graph ()) ~phy ~channel:`Static ~node:t.Schedule.relay
          ~time:t.Schedule.time in
      check_bool "cost in DCS" true
        (List.exists (fun l -> Futil.approx_eq l.Dcs.cost t.Schedule.cost) levels))
    (Schedule.transmissions r.Planner.Outcome.schedule)

(* ------------------------------------------------------------------ *)
(* GREED / RAND *)

let test_greedy_feasible () =
  let p = quickstart_problem () in
  let r = run_greedy p in
  check_bool "feasible" true r.Planner.Outcome.report.Feasibility.feasible;
  Alcotest.(check (list int)) "everyone" [] r.Planner.Outcome.unreached

let test_greedy_never_beats_itself_with_less_time () =
  let p80 = quickstart_problem () in
  let p60 = quickstart_problem ~deadline:60. () in
  let e80 = Metrics.normalized_energy p80 (run_greedy p80).Planner.Outcome.schedule in
  let e60 = Metrics.normalized_energy p60 (run_greedy p60).Planner.Outcome.schedule in
  (* Fewer opportunities can only cost the same or more. *)
  check_bool "monotone in deadline" true (e60 >= e80 -. 1e-9)

let test_greedy_stalls_gracefully () =
  let p = quickstart_problem ~deadline:30. () in
  let r = run_greedy p in
  check_bool "reports unreached" true (List.mem 4 r.Planner.Outcome.unreached);
  check_bool "partial schedule infeasible" false r.Planner.Outcome.report.Feasibility.feasible

let test_random_feasible_and_deterministic () =
  let p = quickstart_problem () in
  let a = run_rand ~rng:(Rng.create 3) p in
  let b = run_rand ~rng:(Rng.create 3) p in
  check_bool "feasible" true a.Planner.Outcome.report.Feasibility.feasible;
  check_bool "same seed same schedule" true
    (Schedule.equal a.Planner.Outcome.schedule b.Planner.Outcome.schedule)

let test_eedcb_beats_baselines_quickstart () =
  let p = quickstart_problem () in
  let e = Metrics.normalized_energy p (run_eedcb p).Planner.Outcome.schedule in
  let g = Metrics.normalized_energy p (run_greedy p).Planner.Outcome.schedule in
  let r = Metrics.normalized_energy p (run_rand ~rng:(Rng.create 1) p).Planner.Outcome.schedule in
  check_bool "EEDCB <= GREED" true (e <= g +. 1e-9);
  check_bool "EEDCB <= RAND" true (e <= r +. 1e-9)

(* ------------------------------------------------------------------ *)
(* FR pipeline *)

let test_fr_requires_fading_channel () =
  Alcotest.check_raises "static rejected"
    (Invalid_argument "Fr.plan: design channel must be a fading model") (fun () ->
      ignore (run_fr `Eedcb (quickstart_problem ())))

let test_fr_eedcb_feasible () =
  let p = quickstart_problem ~channel:`Rayleigh () in
  let r = run_fr `Eedcb p in
  check_bool "feasible under Eq. 6" true r.Planner.Outcome.report.Feasibility.feasible;
  Alcotest.(check (list int)) "nothing unsatisfiable" [] (fr_alloc r).Fr.unsatisfiable

let test_fr_allocation_saves_energy () =
  let p = quickstart_problem ~channel:`Rayleigh () in
  let r = run_fr `Eedcb p in
  (* The uniform-w0 backbone is already per-hop tight here, so the NLP
     cannot beat it by much — but it must never exceed it beyond its
     own safety margin (relative 1e-6 per constraint). *)
  check_bool "NLP <= uniform w0 (+margin)" true
    (Schedule.total_cost r.Planner.Outcome.schedule
    <= Schedule.total_cost (fr_backbone r) *. (1. +. 1e-4))

let test_fr_costs_more_than_static () =
  (* Fading-resistance at eps = 1% costs orders of magnitude more than
     the static design (w0 ~ 100 beta). *)
  let ps = quickstart_problem () in
  let pr = quickstart_problem ~channel:`Rayleigh () in
  let static = Metrics.normalized_energy ps (run_eedcb ps).Planner.Outcome.schedule in
  let fading = Metrics.normalized_energy pr (run_fr `Eedcb pr).Planner.Outcome.schedule in
  check_bool "fading >> static" true (fading > 10. *. static)

let test_fr_greedy_and_random_backbones () =
  let p = quickstart_problem ~channel:`Rayleigh () in
  let g = run_fr `Greedy p in
  check_bool "greedy backbone feasible" true g.Planner.Outcome.report.Feasibility.feasible;
  let r = run_fr ~rng:(Rng.create 4) `Random p in
  check_bool "random backbone feasible" true r.Planner.Outcome.report.Feasibility.feasible

let test_fr_allocate_respects_bounds () =
  let p = quickstart_problem ~channel:`Rayleigh () in
  let r = run_fr `Eedcb p in
  Array.iter
    (fun w -> check_bool "within W" true (phy.Phy.w_min <= w && w <= phy.Phy.w_max))
    (fr_alloc r).Fr.costs

let test_fr_polish_removes_redundancy () =
  (* Two identical transmissions both covering node 1: the allocation
     must discover that one at the ε-cost suffices and drive the other
     to (near) zero. *)
  let g = Tveg.create ~n:2 ~span:(iv 0. 10.) ~tau:0. [ (0, 1, link 0. 10. 10.) ] in
  let p = Problem.make ~graph:g ~phy ~channel:`Rayleigh ~source:0 ~deadline:10. () in
  let w0 = Phy.fading_reference_cost phy ~dist:10. in
  let skeleton = Schedule.of_transmissions [ tx 0 1. w0; tx 0 2. w0 ] in
  let schedule, alloc = Fr.allocate p skeleton in
  Alcotest.(check (list int)) "satisfiable" [] alloc.Fr.unsatisfiable;
  check_bool "redundancy removed" true (Schedule.total_cost schedule <= 1.02 *. w0);
  check_bool "still feasible" true (Feasibility.check p schedule).Feasibility.feasible

let test_fr_unsatisfiable_when_uncovered () =
  (* A backbone that never covers node 4 cannot satisfy its constraint. *)
  let p = quickstart_problem ~channel:`Rayleigh () in
  let skeleton = Schedule.of_transmissions [ tx 0 0. 1e-9; tx 1 20. 1e-9 ] in
  let _, alloc = Fr.allocate p skeleton in
  check_bool "node 4 unsatisfiable" true (List.mem 4 alloc.Fr.unsatisfiable)

let test_fr_nakagami_channel () =
  let p = quickstart_problem ~channel:(`Nakagami 2.) () in
  let r = run_fr `Eedcb p in
  check_bool "nakagami feasible" true r.Planner.Outcome.report.Feasibility.feasible

let test_fr_lognormal_channel () =
  (* sigma = 1.84 nepers ~ 8 dB shadowing. *)
  let p = quickstart_problem ~channel:(`Lognormal 1.84) () in
  let r = run_fr `Eedcb p in
  check_bool "lognormal feasible" true r.Planner.Outcome.report.Feasibility.feasible

(* Regression: with τ = 0 two same-instant transmissions can cover
   each other's relays; Eq. 16 read as plain "t_k <= t_j" lets the NLP
   zero out the source's transmission and rely on the cycle.  The
   firing-rank ordering must prevent that. *)
let test_fr_same_instant_cycle () =
  let g =
    Tveg.create ~n:3 ~span:(iv 0. 10.) ~tau:0.
      [ (0, 1, link 0. 10. 10.); (1, 2, link 0. 10. 10.) ]
  in
  let p = Problem.make ~graph:g ~phy ~channel:`Rayleigh ~source:0 ~deadline:10. () in
  let w0 = Phy.fading_reference_cost phy ~dist:10. in
  (* Chain 0 -> 1 -> 2 all at t = 1, plus a redundant 2 -> 1 shot. *)
  let skeleton = Schedule.of_transmissions [ tx 0 1. w0; tx 1 1. w0; tx 2 1. w0 ] in
  let schedule, alloc = Fr.allocate p skeleton in
  Alcotest.(check (list int)) "nothing unsatisfiable" [] alloc.Fr.unsatisfiable;
  let r = Feasibility.check p schedule in
  check_bool "cycle-free allocation feasible" true r.Feasibility.feasible

(* A skeleton whose relays can never fire (no transmission from the
   source at all) must be reported unsatisfiable, not silently
   accepted. *)
let test_fr_unfireable_relays_reported () =
  let g =
    Tveg.create ~n:3 ~span:(iv 0. 10.) ~tau:0.
      [ (0, 1, link 0. 10. 10.); (1, 2, link 0. 10. 10.) ]
  in
  let p = Problem.make ~graph:g ~phy ~channel:`Rayleigh ~source:0 ~deadline:10. () in
  let w0 = Phy.fading_reference_cost phy ~dist:10. in
  let skeleton = Schedule.of_transmissions [ tx 1 1. w0; tx 2 1. w0 ] in
  let _, alloc = Fr.allocate p skeleton in
  check_bool "relays unsatisfiable" true (alloc.Fr.unsatisfiable <> [])

(* ------------------------------------------------------------------ *)
(* SPT *)

let test_spt_quickstart () =
  let p = quickstart_problem () in
  let eager = Spt.plan (Planner.Ctx.make ()) p in
  check_bool "feasible" true eager.Planner.Outcome.report.Feasibility.feasible;
  Alcotest.(check (list int)) "everyone reached" [] eager.Planner.Outcome.unreached;
  (* The Steiner solver shares relays; the path union cannot beat it
     here, and both must stay feasible. *)
  let e = run_eedcb p in
  check_bool "eedcb <= spt" true
    (Schedule.total_cost e.Planner.Outcome.schedule
    <= Schedule.total_cost eager.Planner.Outcome.schedule +. 1e-9)

let test_spt_lazy_matches_eager () =
  List.iter
    (fun p ->
      let eager = Spt.plan (Planner.Ctx.make ()) p in
      let lzy = Spt.plan (Planner.Ctx.make ~lazy_aux:true ()) p in
      check_bool "schedules equal" true
        (Schedule.equal eager.Planner.Outcome.schedule lzy.Planner.Outcome.schedule);
      Alcotest.(check (list int))
        "unreached equal" eager.Planner.Outcome.unreached lzy.Planner.Outcome.unreached)
    [
      quickstart_problem ();
      quickstart_problem ~deadline:40. ();
      quickstart_problem ~deadline:30. ();
    ]

let test_spt_on_scale_scenario () =
  (* End-to-end on a small clustered Scale instance: lazy SPT reaches
     everyone and leaves most of the vertex universe untouched. *)
  let params = { Scale.default_params with Scale.cluster = 12; epochs = 2 } in
  let g = Scale.scenario ~params ~n:36 () in
  let p =
    Problem.make ~graph:g ~phy ~channel:`Static ~source:0
      ~deadline:(Scale.deadline ~params ()) ()
  in
  let dts = Problem.dts ~cap_per_node:64 p in
  let lazy_aux = Aux_graph.Lazy.create p dts in
  let outcome = Spt.plan (Planner.Ctx.make ~lazy_aux:true ~cap_per_node:64 ()) p in
  check_bool "feasible" true outcome.Planner.Outcome.report.Feasibility.feasible;
  Alcotest.(check (list int)) "everyone reached" [] outcome.Planner.Outcome.unreached;
  (* Replay the planner's scan on a fresh lazy graph to measure the
     frontier cut on this instance. *)
  ignore
    (Tmedb_steiner.Dijkstra.run_view
       ~targets:(Aux_graph.Lazy.terminals lazy_aux)
       (Aux_graph.Lazy.view lazy_aux)
       ~src:(Aux_graph.Lazy.source_vertex lazy_aux));
  let total = Aux_graph.Lazy.num_vertices lazy_aux in
  let touched = Aux_graph.Lazy.nodes_materialized lazy_aux in
  check_bool "frontier cut" true (touched * 2 < total)

(* ------------------------------------------------------------------ *)
(* Static BIP baseline *)

let test_bip_static_network () =
  (* A line 0-1-2 with permanent links: the static protocol works. *)
  let g =
    Tveg.create ~n:3 ~span:(iv 0. 10.) ~tau:0.
      [ (0, 1, link 0. 10. 10.); (1, 2, link 0. 10. 10.) ]
  in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:10. () in
  let r = run_bip p in
  Alcotest.(check (list int)) "all informed" [] r.Planner.Outcome.unreached;
  check_bool "feasible on static graph" true r.Planner.Outcome.report.Feasibility.feasible;
  (* Tree: 0 -> 1 -> 2, two transmissions at 10 m each. *)
  close "planned = 2 hops" (2. *. w_for 10.) (Option.get (Planner.Outcome.planned_energy r))

let test_bip_one_shot_misses_disjoint_contacts () =
  (* 0 meets 1 and 2 during disjoint windows.  BIP's tree makes 0 the
     parent of both, but a single transmission cannot serve both
     windows: the replay must lose one child — the paper's motivating
     failure of static protocols.  EEDCB transmits twice and wins. *)
  let g =
    Tveg.create ~n:3 ~span:(iv 0. 40.) ~tau:0.
      [ (0, 1, link 0. 10. 10.); (0, 2, link 20. 30. 10.) ]
  in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:40. () in
  let bip = run_bip p in
  Alcotest.(check (list int)) "BIP misses node 2" [ 2 ] bip.Planner.Outcome.unreached;
  check_bool "BIP infeasible" false bip.Planner.Outcome.report.Feasibility.feasible;
  let eedcb = run_eedcb p in
  check_bool "EEDCB succeeds" true eedcb.Planner.Outcome.report.Feasibility.feasible

let test_bip_power_planned_on_best_distance () =
  (* The snapshot records the pair 1-2 at its best-ever 5 m, but that
     window closes before node 1 is informed (via 0-1 during
     [10, 15)); the only remaining 1-2 contact is at 20 m.  BIP's
     5 m-planned power is too weak at replay time. *)
  let g =
    Tveg.create ~n:3 ~span:(iv 0. 40.) ~tau:0.
      [ (0, 1, link 10. 15. 10.); (1, 2, link 0. 5. 5.); (1, 2, link 20. 30. 20.) ]
  in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:40. () in
  let bip = run_bip p in
  (* Node 1 transmits at t=20 with power planned for 5 m; the actual
     distance is 20 m: node 2 misses the packet. *)
  check_bool "node 2 lost" true (List.mem 2 bip.Planner.Outcome.unreached);
  let eedcb = run_eedcb p in
  check_bool "EEDCB adapts power" true eedcb.Planner.Outcome.report.Feasibility.feasible

let test_bip_snapshot_unreachable () =
  let g = Tveg.create ~n:3 ~span:(iv 0. 10.) ~tau:0. [ (0, 1, link 0. 10. 10.) ] in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:10. () in
  let r = run_bip p in
  Alcotest.(check (list int)) "isolated node" [ 2 ] (Planner.Outcome.snapshot_unreachable r)

let test_bip_quickstart_comparison () =
  (* On the quickstart instance the snapshot happens to be realisable
     in part; BIP must never beat EEDCB when both deliver, and when
     BIP loses nodes its delivery is below 1. *)
  let p = quickstart_problem () in
  let bip = run_bip p in
  let eedcb = run_eedcb p in
  if bip.Planner.Outcome.unreached = [] then
    check_bool "EEDCB no worse" true
      (Schedule.total_cost eedcb.Planner.Outcome.schedule
      <= Schedule.total_cost bip.Planner.Outcome.schedule +. 1e-18)
  else check_bool "BIP delivery below 1" true (Feasibility.delivery_ratio bip.Planner.Outcome.report < 1.)

(* ------------------------------------------------------------------ *)
(* Simulate *)

let test_simulate_static_deterministic () =
  let p = quickstart_problem () in
  let s = optimal_quickstart_schedule () in
  let sim = Simulate.run ~trials:50 ~rng:(Rng.create 1) ~eval_channel:`Static p s in
  close "full delivery" 1. sim.Simulate.delivery_ratio;
  close "no variance" 0. sim.Simulate.delivery_stddev;
  close "energy = schedule cost" (Schedule.total_cost s) sim.Simulate.mean_energy_spent

let test_simulate_single_link_rayleigh () =
  (* One link at distance d, one transmission at w = beta: success
     probability e^-1, so mean delivery over 2 nodes is
     (1 + e^-1) / 2 ~ 0.684. *)
  let g = Tveg.create ~n:2 ~span:(iv 0. 10.) ~tau:0. [ (0, 1, link 0. 10. 10.) ] in
  let p = Problem.make ~graph:g ~phy ~channel:`Rayleigh ~source:0 ~deadline:10. () in
  let s = Schedule.of_transmissions [ tx 0 1. (Phy.beta phy ~dist:10.) ] in
  let sim = Simulate.run ~trials:20_000 ~rng:(Rng.create 2) ~eval_channel:`Rayleigh p s in
  close ~tol:0.02 "expected delivery" ((1. +. exp (-1.)) /. 2.) sim.Simulate.delivery_ratio

let test_simulate_uninformed_relay_spends_nothing () =
  let p = quickstart_problem () in
  (* Node 1 transmits but never received: no energy, no delivery. *)
  let s = Schedule.of_transmissions [ tx 1 20. (w_for 15.) ] in
  let sim = Simulate.run ~trials:20 ~rng:(Rng.create 3) ~eval_channel:`Static p s in
  close "no energy" 0. sim.Simulate.mean_energy_spent;
  close "only source" (1. /. 5.) sim.Simulate.delivery_ratio

let test_simulate_fr_high_delivery () =
  let p = quickstart_problem ~channel:`Rayleigh () in
  let r = run_fr `Eedcb p in
  let sim = Simulate.run ~trials:2000 ~rng:(Rng.create 4) ~eval_channel:`Rayleigh p r.Planner.Outcome.schedule in
  check_bool "delivery > 95%" true (sim.Simulate.delivery_ratio > 0.95)

let test_simulate_static_design_suffers_in_fading () =
  let p_static = quickstart_problem () in
  let s = (run_eedcb p_static).Planner.Outcome.schedule in
  let p_eval = quickstart_problem ~channel:`Rayleigh () in
  let sim = Simulate.run ~trials:2000 ~rng:(Rng.create 5) ~eval_channel:`Rayleigh p_eval s in
  check_bool "delivery well below 1" true (sim.Simulate.delivery_ratio < 0.9)

let test_simulate_deterministic_in_seed () =
  let p = quickstart_problem () in
  let s = optimal_quickstart_schedule () in
  let a = Simulate.run ~trials:100 ~rng:(Rng.create 6) ~eval_channel:`Rayleigh p s in
  let b = Simulate.run ~trials:100 ~rng:(Rng.create 6) ~eval_channel:`Rayleigh p s in
  close "same ratio" a.Simulate.delivery_ratio b.Simulate.delivery_ratio

(* ------------------------------------------------------------------ *)
(* Interference analysis (future-work extension) *)

let test_interference_free_sequential () =
  (* Disjoint transmission instants with tau = 0 never conflict. *)
  let p = quickstart_problem () in
  check_bool "sequential clean" true
    (Interference.is_interference_free p (optimal_quickstart_schedule ()))

let test_interference_collision () =
  (* Nodes 1 and 2 both transmit at t = 5 while node 0 hears both. *)
  let g =
    Tveg.create ~n:3 ~span:(iv 0. 10.) ~tau:0.
      [ (0, 1, link 0. 10. 10.); (0, 2, link 0. 10. 10.) ]
  in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:10. () in
  let s = Schedule.of_transmissions [ tx 1 5. (w_for 10.); tx 2 5. (w_for 10.) ] in
  let conflicts = Interference.check p s in
  check_bool "collision found" true
    (List.exists
       (fun c -> match c with Interference.Collision { node = 0; _ } -> true | _ -> false)
       conflicts)

let test_interference_half_duplex () =
  (* Adjacent nodes transmitting simultaneously cannot hear each other. *)
  let g = Tveg.create ~n:2 ~span:(iv 0. 10.) ~tau:0. [ (0, 1, link 0. 10. 10.) ] in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:10. () in
  let s = Schedule.of_transmissions [ tx 0 5. (w_for 10.); tx 1 5. (w_for 10.) ] in
  let conflicts = Interference.check p s in
  check_int "both directions flagged" 2
    (List.length
       (List.filter
          (fun c -> match c with Interference.Half_duplex _ -> true | _ -> false)
          conflicts))

let test_interference_tau_window_overlap () =
  (* tau = 2: transmissions at t=0 and t=1.5 overlap; at t=0 and t=3
     they do not. *)
  let g =
    Tveg.create ~n:4 ~span:(iv 0. 20.) ~tau:2.
      [ (0, 2, link 0. 20. 10.); (1, 2, link 0. 20. 10.) ]
  in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:20. () in
  let overlapping = Schedule.of_transmissions [ tx 0 0. (w_for 10.); tx 1 1.5 (w_for 10.) ] in
  check_bool "overlap collides at node 2" false (Interference.is_interference_free p overlapping);
  let sequential = Schedule.of_transmissions [ tx 0 0. (w_for 10.); tx 1 3. (w_for 10.) ] in
  check_bool "separated windows clean" true (Interference.is_interference_free p sequential)

let test_interference_out_of_range_no_collision () =
  (* Two simultaneous transmissions whose audiences do not intersect. *)
  let g =
    Tveg.create ~n:4 ~span:(iv 0. 10.) ~tau:0.
      [ (0, 1, link 0. 10. 10.); (2, 3, link 0. 10. 10.) ]
  in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:10. () in
  let s = Schedule.of_transmissions [ tx 0 5. (w_for 10.); tx 2 5. (w_for 10.) ] in
  check_bool "spatially disjoint clean" true (Interference.is_interference_free p s)

(* ------------------------------------------------------------------ *)
(* Robustness under contact uncertainty (future-work extension) *)

let test_robustness_certain_contacts () =
  (* presence_prob = 1 everywhere: replaying the EEDCB schedule on any
     realization is the original instance. *)
  let nd = Tmedb_tveg.Nondet.of_tveg (quickstart_graph ()) ~presence_prob:1. in
  let schedule =
    Robustness.plan_on_support nd ~phy ~channel:`Static ~source:0 ~deadline:80.
  in
  let r =
    Robustness.evaluate_schedule ~trials:20 ~rng:(Rng.create 5) nd ~phy ~channel:`Static
      ~source:0 ~deadline:80. schedule
  in
  close "always delivers" 1. r.Tmedb_tveg.Nondet.mean_delivery;
  close "always fully" 1. r.Tmedb_tveg.Nondet.full_delivery_rate;
  close "nothing wasted" 0. r.Tmedb_tveg.Nondet.mean_energy_wasted

let test_robustness_flaky_contacts_lose_delivery () =
  let nd = Tmedb_tveg.Nondet.of_tveg (quickstart_graph ()) ~presence_prob:0.6 in
  let schedule =
    Robustness.plan_on_support nd ~phy ~channel:`Static ~source:0 ~deadline:80.
  in
  let r =
    Robustness.evaluate_schedule ~trials:300 ~rng:(Rng.create 6) nd ~phy ~channel:`Static
      ~source:0 ~deadline:80. schedule
  in
  check_bool "delivery strictly below 1" true (r.Tmedb_tveg.Nondet.mean_delivery < 0.95);
  check_bool "some energy wasted" true (r.Tmedb_tveg.Nondet.mean_energy_wasted > 0.)

let test_robustness_threshold_planning () =
  (* Planning against the thresholded graph only uses near-certain
     contacts, so flakiness of the low-probability ones is harmless. *)
  let certain = Tmedb_tveg.Nondet.of_tveg (quickstart_graph ()) ~presence_prob:1. in
  let extra_links =
    (* Add one unlikely shortcut contact. *)
    { Tmedb_tveg.Nondet.a = 0; b = 4; link = { Tveg.iv = iv 0. 5.; dist = 8. };
      presence_prob = 0.05 }
    :: Tmedb_tveg.Nondet.contacts certain
  in
  let nd = Tmedb_tveg.Nondet.create ~n:5 ~span:(iv 0. 100.) ~tau:0. extra_links in
  (* Optimistic planning grabs the cheap 8 m shortcut... *)
  let optimistic =
    Robustness.plan_on_support nd ~phy ~channel:`Static ~source:0 ~deadline:80.
  in
  (* ...thresholded planning ignores it. *)
  let robust =
    Robustness.plan_on_threshold ~min_prob:0.5 nd ~phy ~channel:`Static ~source:0 ~deadline:80.
  in
  let eval s =
    Robustness.evaluate_schedule ~trials:200 ~rng:(Rng.create 7) nd ~phy ~channel:`Static
      ~source:0 ~deadline:80. s
  in
  let r_opt = eval optimistic and r_rob = eval robust in
  check_bool "robust plan delivers at least as often" true
    (r_rob.Tmedb_tveg.Nondet.full_delivery_rate
    >= r_opt.Tmedb_tveg.Nondet.full_delivery_rate);
  close "robust plan always delivers" 1. r_rob.Tmedb_tveg.Nondet.full_delivery_rate

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_normalized_energy () =
  let p = quickstart_problem () in
  let s = Schedule.of_transmissions [ tx 0 0. (w_for 30.) ] in
  close "d^2" 900. (Metrics.normalized_energy p s)

let test_lower_bound_single_link_static () =
  (* One link at 10 m: the optimum is exactly the bound. *)
  let g = Tveg.create ~n:2 ~span:(iv 0. 10.) ~tau:0. [ (0, 1, link 0. 10. 10.) ] in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:10. () in
  close "LB = w_th" (w_for 10.) (Metrics.energy_lower_bound p);
  let r = run_eedcb p in
  close "EEDCB achieves LB" (Metrics.energy_lower_bound p) (Schedule.total_cost r.Planner.Outcome.schedule)

let test_lower_bound_additive_refinement () =
  (* Node 2 never meets the source: the bound must include both the
     source hop and a second transmission. *)
  let g =
    Tveg.create ~n:3 ~span:(iv 0. 10.) ~tau:0.
      [ (0, 1, link 0. 10. 10.); (1, 2, link 0. 10. 20.) ]
  in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:10. () in
  close "LB additive" (w_for 10. +. w_for 20.) (Metrics.energy_lower_bound p);
  let r = run_eedcb p in
  close "EEDCB achieves it" (Metrics.energy_lower_bound p) (Schedule.total_cost r.Planner.Outcome.schedule)

let test_lower_bound_unreachable_infinite () =
  let g = Tveg.create ~n:3 ~span:(iv 0. 10.) ~tau:0. [ (0, 1, link 0. 10. 10.) ] in
  let p = Problem.make ~graph:g ~phy ~channel:`Static ~source:0 ~deadline:10. () in
  check_bool "infinite" true (Metrics.energy_lower_bound p = Float.infinity)

let test_lower_bound_below_all_algorithms () =
  for seed = 100 to 130 do
    let p = random_instance seed in
    if Problem.is_reachable p then begin
      let lb = Metrics.energy_lower_bound p in
      let e = Schedule.total_cost (run_eedcb p).Planner.Outcome.schedule in
      check_bool "LB <= EEDCB (static)" true (lb <= e +. 1e-18);
      let pf = { p with Problem.channel = `Rayleigh } in
      let lbf = Metrics.energy_lower_bound pf in
      let f = Schedule.total_cost (run_fr `Eedcb pf).Planner.Outcome.schedule in
      check_bool "LB <= FR-EEDCB (fading)" true (lbf <= f +. 1e-18)
    end
  done

let test_lower_bound_fading_exceeds_static () =
  let ps = quickstart_problem () in
  let pf = quickstart_problem ~channel:`Rayleigh () in
  check_bool "fading bound dearer" true
    (Metrics.energy_lower_bound pf > Metrics.energy_lower_bound ps)

let test_metrics_latency () =
  let p = quickstart_problem () in
  (match Metrics.broadcast_latency p (optimal_quickstart_schedule ()) with
  | Some l -> close "latency 35" 35. l
  | None -> Alcotest.fail "expected latency");
  check_bool "none when incomplete" true
    (Metrics.broadcast_latency p (Schedule.of_transmissions [ tx 0 0. (w_for 10.) ]) = None)

(* Property: on random reachable instances EEDCB returns feasible
   schedules. *)
let prop_eedcb_feasible_when_reachable =
  QCheck.Test.make ~name:"EEDCB feasible on reachable instances" ~count:40 QCheck.small_int
    (fun seed ->
      let p = random_instance seed in
      if not (Problem.is_reachable p) then true
      else begin
        let r = run_eedcb p in
        r.Planner.Outcome.report.Feasibility.feasible
      end)

(* EEDCB is an approximation: on individual instances it may lose to
   GREED (recursive-greedy density is myopic too), but the paper's
   Fig. 5 claim is the aggregate ordering.  Check the mean ratio over
   many random instances, plus a sanity per-instance bound. *)
let test_eedcb_beats_greedy_on_average () =
  let ratios = ref [] in
  for seed = 500 to 579 do
    let p = random_instance seed in
    if Problem.is_reachable p then begin
      let e = Schedule.total_cost (run_eedcb p).Planner.Outcome.schedule in
      let g = Schedule.total_cost (run_greedy p).Planner.Outcome.schedule in
      check_bool "never catastrophically worse" true (e <= (2. *. g) +. 1e-15);
      ratios := (e /. g) :: !ratios
    end
  done;
  let mean = Stats.mean (Array.of_list !ratios) in
  check_bool
    (Printf.sprintf "mean EEDCB/GREED ratio < 1 (got %.3f)" mean)
    true (mean < 1.)

(* Theorem 5.2 / Prop. 5.1 on random instances: ET-law normalisation
   of a feasible schedule is feasible at equal cost, with every time on
   the DTS. *)
let prop_et_law_on_random_instances =
  QCheck.Test.make ~name:"ET-law normalisation preserves feasibility (Thm 5.2)" ~count:40
    QCheck.small_int (fun seed ->
      let p = random_instance (seed + 2000) in
      if not (Problem.is_reachable p) then true
      else begin
        let r = run_greedy p in
        if not r.Planner.Outcome.report.Feasibility.feasible then true
        else begin
          let dts = Problem.dts p in
          let informed v = r.Planner.Outcome.report.Feasibility.informed_time.(v) in
          let normalized = Schedule.normalize_et r.Planner.Outcome.schedule dts ~informed_time:informed in
          let check = Feasibility.check p normalized in
          check.Feasibility.feasible
          && Float.abs (Schedule.total_cost normalized -. Schedule.total_cost r.Planner.Outcome.schedule)
             < 1e-18
          && List.for_all
               (fun t ->
                 Dts.latest_at_or_before dts t.Schedule.relay t.Schedule.time
                 = Some t.Schedule.time)
               (Schedule.transmissions normalized)
        end
      end)

(* The Eq.-6 analytic delivery and the Monte-Carlo delivery agree under
   the static channel (both deterministic). *)
let prop_static_simulation_matches_analytic =
  QCheck.Test.make ~name:"static MC delivery = analytic delivery" ~count:25 QCheck.small_int
    (fun seed ->
      let p = random_instance (seed + 3000) in
      let r = run_greedy p in
      let analytic = Feasibility.delivery_ratio r.Planner.Outcome.report in
      let sim =
        Simulate.run ~trials:3 ~rng:(Rng.create seed) ~eval_channel:`Static p r.Planner.Outcome.schedule
      in
      Float.abs (sim.Simulate.delivery_ratio -. analytic) < 1e-9)

let prop_fr_allocation_feasible =
  QCheck.Test.make ~name:"FR allocation satisfies Eq. 6 when satisfiable" ~count:25
    QCheck.small_int (fun seed ->
      let p = random_instance (seed + 900) in
      if not (Problem.is_reachable p) then true
      else begin
        let p = { p with Problem.channel = `Rayleigh } in
        let r = run_fr `Eedcb p in
        (fr_alloc r).Fr.unsatisfiable <> [] || r.Planner.Outcome.report.Feasibility.feasible
      end)

(* Digest guard for the sorted-iteration rewrites flagged by lint rule
   R1 (Dst.Edge_set, Random_relay, Aux_graph.extract_schedule,
   Trace.stats): the full fig6 sweep — all six algorithms over the
   auxiliary graph, RAND draws and the Monte-Carlo simulator — must
   marshal to the same bytes at every worker count. *)
let test_fig6_digest_jobs_invariant () =
  let config =
    {
      Experiment.default_config with
      Experiment.n = 8;
      horizon = 5000.;
      deadline = 1200.;
      sources = 1;
      mc_trials = 40;
      dts_cap = 400;
    }
  in
  let digest pool =
    let series = Experiment.fig6 ~config ?pool ~ns:[ 6; 8 ] () in
    Digest.to_hex (Digest.string (Marshal.to_string series []))
  in
  let reference = digest None in
  List.iter
    (fun k ->
      Pool.with_pool ~num_domains:k (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "fig6 digest jobs=%d" k)
            reference
            (digest (Some pool))))
    [ 1; 2; 4 ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core"
    [
      ( "schedule",
        [
          tc "sorted and cost" test_schedule_sorted_and_cost;
          tc "validation" test_schedule_validation;
          tc "map costs" test_schedule_map_costs;
          tc "empty" test_schedule_empty;
          tc "equal" test_schedule_equal;
          tc "csv roundtrip" test_schedule_csv_roundtrip;
          tc "save/load" test_schedule_save_load;
        ] );
      ( "problem",
        [
          tc "validation" test_problem_validation;
          tc "reachability" test_problem_reachability;
          tc "gadget structure" test_gadget_structure;
          tc "gadget validation" test_gadget_validation;
          tc "gadget optimal k*=1" test_gadget_optimal_single_set;
          tc "gadget optimal k*=2" test_gadget_optimal_two_sets;
        ] );
      ( "feasibility",
        [
          tc "valid schedule" test_feasibility_valid_schedule;
          tc "uninformed relay" test_feasibility_uninformed_relay;
          tc "missing node" test_feasibility_missing_node;
          tc "late transmission" test_feasibility_late_transmission;
          tc "budget" test_feasibility_budget;
          tc "cost out of range" test_feasibility_cost_out_of_range;
          tc "insufficient power" test_feasibility_insufficient_power;
          tc "same-instant chain" test_feasibility_same_instant_chain;
          tc "fading accumulates" test_feasibility_fading_accumulates;
          tc "DTS equivalence (Thm 5.2)" test_dts_equivalence_perturbation;
          QCheck_alcotest.to_alcotest prop_et_law_on_random_instances;
        ] );
      ( "aux_graph",
        [
          tc "shape" test_aux_graph_shape;
          tc "extract roundtrip" test_aux_graph_extract_roundtrip;
          tc "deadline blocks late levels" test_aux_graph_deadline_blocks_late_levels;
          tc "lazy equivalence" test_lazy_aux_equivalence;
          tc "lazy frontier partial" test_lazy_aux_frontier_is_partial;
        ] );
      ( "spt",
        [
          tc "quickstart" test_spt_quickstart;
          tc "lazy matches eager" test_spt_lazy_matches_eager;
          tc "scale scenario end-to-end" test_spt_on_scale_scenario;
        ] );
      ( "eedcb",
        [
          tc "quickstart optimal" test_eedcb_quickstart_optimal;
          tc "respects deadline" test_eedcb_respects_deadline;
          tc "unreachable reported" test_eedcb_unreachable_reported;
          tc "level 1 works" test_eedcb_level1_works;
          tc "positive tau" test_eedcb_positive_tau;
          tc "tau too large" test_eedcb_tau_too_large;
          tc "schedule on DTS" test_eedcb_schedule_on_dts;
          tc "beats greedy on average" test_eedcb_beats_greedy_on_average;
          QCheck_alcotest.to_alcotest prop_eedcb_feasible_when_reachable;
        ] );
      ( "baselines",
        [
          tc "greedy feasible" test_greedy_feasible;
          tc "greedy monotone deadline" test_greedy_never_beats_itself_with_less_time;
          tc "greedy stalls gracefully" test_greedy_stalls_gracefully;
          tc "random deterministic" test_random_feasible_and_deterministic;
          tc "EEDCB beats baselines" test_eedcb_beats_baselines_quickstart;
        ] );
      ( "fr",
        [
          tc "requires fading" test_fr_requires_fading_channel;
          tc "fr-eedcb feasible" test_fr_eedcb_feasible;
          tc "allocation saves energy" test_fr_allocation_saves_energy;
          tc "fading >> static" test_fr_costs_more_than_static;
          tc "other backbones" test_fr_greedy_and_random_backbones;
          tc "respects bounds" test_fr_allocate_respects_bounds;
          tc "polish removes redundancy" test_fr_polish_removes_redundancy;
          tc "unsatisfiable reported" test_fr_unsatisfiable_when_uncovered;
          tc "nakagami channel" test_fr_nakagami_channel;
          tc "lognormal channel" test_fr_lognormal_channel;
          tc "same-instant cycle regression" test_fr_same_instant_cycle;
          tc "unfireable relays reported" test_fr_unfireable_relays_reported;
          QCheck_alcotest.to_alcotest prop_fr_allocation_feasible;
        ] );
      ( "static_bip",
        [
          tc "static network" test_bip_static_network;
          tc "one shot misses disjoint contacts" test_bip_one_shot_misses_disjoint_contacts;
          tc "best-distance power fails" test_bip_power_planned_on_best_distance;
          tc "snapshot unreachable" test_bip_snapshot_unreachable;
          tc "quickstart comparison" test_bip_quickstart_comparison;
        ] );
      ( "simulate",
        [
          tc "static deterministic" test_simulate_static_deterministic;
          tc "single-link rayleigh" test_simulate_single_link_rayleigh;
          tc "uninformed relay spends nothing" test_simulate_uninformed_relay_spends_nothing;
          tc "fr high delivery" test_simulate_fr_high_delivery;
          tc "static suffers in fading" test_simulate_static_design_suffers_in_fading;
          tc "deterministic in seed" test_simulate_deterministic_in_seed;
          QCheck_alcotest.to_alcotest prop_static_simulation_matches_analytic;
        ] );
      ( "interference",
        [
          tc "sequential clean" test_interference_free_sequential;
          tc "collision" test_interference_collision;
          tc "half duplex" test_interference_half_duplex;
          tc "tau window overlap" test_interference_tau_window_overlap;
          tc "out of range clean" test_interference_out_of_range_no_collision;
        ] );
      ( "robustness",
        [
          tc "certain contacts" test_robustness_certain_contacts;
          tc "flaky contacts lose delivery" test_robustness_flaky_contacts_lose_delivery;
          tc "threshold planning" test_robustness_threshold_planning;
        ] );
      ( "metrics",
        [
          tc "normalized energy" test_metrics_normalized_energy;
          tc "latency" test_metrics_latency;
          tc "LB single link" test_lower_bound_single_link_static;
          tc "LB additive refinement" test_lower_bound_additive_refinement;
          tc "LB unreachable infinite" test_lower_bound_unreachable_infinite;
          tc "LB below all algorithms" test_lower_bound_below_all_algorithms;
          tc "LB fading exceeds static" test_lower_bound_fading_exceeds_static;
        ] );
      ( "determinism",
        [ tc "fig6 digest jobs=1/2/4" test_fig6_digest_jobs_invariant ] );
    ]
