(* Tests for the domain pool: parallel maps agree with sequential
   execution, exceptions propagate, nested use is safe, and the
   experiment stack (Monte-Carlo simulation, figure sweeps) is
   bit-identical at every worker count. *)

open Tmedb_prelude
open Tmedb

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_int_array = Alcotest.(check (array int))

let jobs_under_test = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool mechanics *)

let test_map_matches_sequential () =
  let input = Array.init 257 (fun i -> i - 31) in
  let f x = (x * x) + (3 * x) in
  let expected = Array.map f input in
  List.iter
    (fun k ->
      Pool.with_pool ~num_domains:k (fun pool ->
          check_int "advertised size" k (Pool.num_domains pool);
          check_int_array
            (Printf.sprintf "map jobs=%d" k)
            expected (Pool.parallel_map pool f input);
          check_int_array
            (Printf.sprintf "chunked jobs=%d" k)
            expected
            (Pool.parallel_map_chunked pool f input);
          check_int_array
            (Printf.sprintf "chunk=3 jobs=%d" k)
            expected
            (Pool.parallel_map_chunked ~chunk:3 pool f input)))
    jobs_under_test

let test_parallel_init () =
  Pool.with_pool ~num_domains:4 (fun pool ->
      check_int_array "init" (Array.init 100 (fun i -> 2 * i))
        (Pool.parallel_init pool 100 (fun i -> 2 * i));
      check_int_array "empty" [||] (Pool.parallel_init pool 0 (fun i -> i)))

let test_option_dispatch () =
  let input = Array.init 17 Fun.id in
  check_int_array "no pool" (Array.map succ input) (Pool.map None succ input);
  Pool.with_pool ~num_domains:2 (fun pool ->
      check_int_array "some pool" (Array.map succ input) (Pool.map (Some pool) succ input);
      check_int_array "some pool chunked" (Array.map succ input)
        (Pool.map_chunked ~chunk:4 (Some pool) succ input))

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun k ->
      Pool.with_pool ~num_domains:k (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "raises jobs=%d" k)
            (Boom 37)
            (fun () ->
              ignore
                (Pool.parallel_map pool
                   (fun i -> if i = 37 then raise (Boom 37) else i)
                   (Array.init 64 Fun.id)));
          (* The pool survives a failed batch. *)
          check_int "usable after failure" 10 (Pool.parallel_map pool (fun x -> x + 1) [| 9 |]).(0)))
    jobs_under_test

let test_nested_use () =
  Pool.with_pool ~num_domains:4 (fun pool ->
      let inner i =
        Array.fold_left ( + ) 0 (Pool.parallel_map pool (fun j -> i * j) (Array.init 32 Fun.id))
      in
      let result = Pool.parallel_map pool inner (Array.init 16 Fun.id) in
      let expected =
        Array.init 16 (fun i ->
            Array.fold_left ( + ) 0 (Array.init 32 (fun j -> i * j)))
      in
      check_int_array "nested map" expected result)

let test_create_validation () =
  check_bool "heuristic positive" true (Pool.default_num_domains () >= 1);
  Alcotest.check_raises "zero domains" (Invalid_argument "Pool.create: num_domains 0 < 1")
    (fun () -> ignore (Pool.create ~num_domains:0 ()))

(* ------------------------------------------------------------------ *)
(* Determinism of the experiment stack across worker counts *)

let tiny =
  {
    Experiment.default_config with
    Experiment.n = 8;
    horizon = 5000.;
    deadline = 1200.;
    sources = 1;
    mc_trials = 40;
    dts_cap = 400;
  }

let float_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Float.equal x y
  | None, Some _ | Some _, None -> false

let test_simulate_bit_identical () =
  let trace = Experiment.make_trace tiny ~n:8 in
  let problem =
    Experiment.make_problem tiny ~trace ~channel:`Rayleigh ~source:0 ~deadline:1200.
  in
  let schedule =
    (Greedy.plan (Planner.Ctx.make ~cap_per_node:400 ()) problem).Planner.Outcome.schedule
  in
  let run pool =
    Simulate.run ~trials:200 ?pool ~rng:(Rng.create 7) ~eval_channel:`Rayleigh problem schedule
  in
  let reference = run None in
  List.iter
    (fun k ->
      Pool.with_pool ~num_domains:k (fun pool ->
          let r = run (Some pool) in
          let tag field = Printf.sprintf "%s jobs=%d" field k in
          check_bool (tag "delivery") true
            (Float.equal reference.Simulate.delivery_ratio r.Simulate.delivery_ratio);
          check_bool (tag "stddev") true
            (Float.equal reference.Simulate.delivery_stddev r.Simulate.delivery_stddev);
          check_bool (tag "full rate") true
            (Float.equal reference.Simulate.full_delivery_rate r.Simulate.full_delivery_rate);
          check_bool (tag "energy") true
            (Float.equal reference.Simulate.mean_energy_spent r.Simulate.mean_energy_spent);
          check_bool (tag "completion") true
            (float_opt_equal reference.Simulate.mean_completion_time
               r.Simulate.mean_completion_time)))
    jobs_under_test

let test_fig4_bit_identical () =
  let run pool =
    Experiment.fig4 ~config:tiny ?pool ~variant:`Static ~deadlines:[ 800.; 1200. ] ~ns:[ 6; 8 ]
      ()
  in
  let reference = run None in
  check_bool "reference is non-trivial" true
    (List.exists (fun s -> s.Experiment.points <> []) reference);
  List.iter
    (fun k ->
      Pool.with_pool ~num_domains:k (fun pool ->
          (* Structural equality covers labels and every (x, y) float. *)
          check_bool (Printf.sprintf "fig4 jobs=%d" k) true (run (Some pool) = reference)))
    jobs_under_test

(* Fig. 5 exercises the warm chains (fading variant → FR planners →
   warm-started NLP): its values must still not depend on the worker
   count, since each (algorithm, source) chain is one pool task. *)
let test_fig5_bit_identical () =
  let run pool =
    Experiment.fig5 ~config:tiny ?pool ~variant:`Fading ~deadlines:[ 800.; 1200. ] ()
  in
  let reference = run None in
  check_bool "reference is non-trivial" true
    (List.exists (fun s -> s.Experiment.points <> []) reference);
  List.iter
    (fun k ->
      Pool.with_pool ~num_domains:k (fun pool ->
          check_bool (Printf.sprintf "fig5 jobs=%d" k) true (run (Some pool) = reference)))
    jobs_under_test

(* Warm-starting trades the cold multi-start for the previous point's
   allocation: over a deadline chain the energies must stay close to
   the cold run (both are feasible local optima of the same NLP), and
   the warm chain must not be wildly worse. *)
let test_warm_chain_close_to_cold () =
  let trace = Experiment.make_trace tiny ~n:8 in
  let deadlines = [ 900.; 1100.; 1300. ] in
  let algorithm =
    match Experiment.algorithm_of_string "FR-GREED" with Ok a -> a | Error e -> failwith e
  in
  let energies warm =
    List.map
      (fun deadline ->
        let rng = Rng.create 23 in
        (Experiment.run_alg ?warm tiny ~trace ~source:0 ~deadline ~rng algorithm)
          .Experiment.energy)
      deadlines
  in
  let cold = energies None in
  let warm = energies (Some (Planner.Warm.create ())) in
  check_bool "cold energies positive" true (List.for_all (fun e -> e > 0.) cold);
  List.iter2
    (fun c w ->
      check_bool
        (Printf.sprintf "warm %.6g within 10%% of cold %.6g" w c)
        true
        (Float.abs (w -. c) <= 0.10 *. Float.abs c))
    cold warm

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "pool"
    [
      ( "pool",
        [
          tc "map matches sequential" test_map_matches_sequential;
          tc "parallel init" test_parallel_init;
          tc "option dispatch" test_option_dispatch;
          tc "exception propagates" test_exception_propagates;
          tc "nested use" test_nested_use;
          tc "create validation" test_create_validation;
        ] );
      ( "determinism",
        [
          slow "Simulate.run bit-identical" test_simulate_bit_identical;
          slow "Experiment.fig4 bit-identical" test_fig4_bit_identical;
          slow "Experiment.fig5 bit-identical" test_fig5_bit_identical;
        ] );
      ("warm-start", [ slow "warm chain close to cold" test_warm_chain_close_to_cold ]);
    ]
